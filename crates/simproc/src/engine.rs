//! Cycle-driven chip simulation engine.
//!
//! The engine follows the instruction-window-centric modelling style of
//! Sniper (Carlson et al., TACO 2014 — the simulator the paper uses):
//! instructions are dispatched in order into a reorder buffer, each with a
//! completion time derived from its class, the cache hierarchy, and the
//! thread's dependence chain; commit is in-order and bandwidth-limited.
//! Interference between co-running jobs emerges from:
//!
//! * shared dispatch/commit bandwidth on an SMT core (fetch policy decides
//!   who gets the slots),
//! * shared or partitioned ROB entries,
//! * shared caches at the configured levels,
//! * a shared memory bus with queueing (bandwidth contention).

use std::collections::VecDeque;

use crate::cache::{Cache, CacheStats};
use crate::config::{FetchPolicy, MachineConfig, RobPartitioning, Topology};
use crate::insn::{Insn, InsnKind};
use crate::mem::{BusStats, MemoryBus};
use crate::profile::BenchmarkProfile;
use crate::trace::TraceGen;

/// Result of one coschedule simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Instructions committed per context during measurement.
    pub committed: Vec<u64>,
    /// Per-context IPC over the measurement window.
    pub ipc: Vec<f64>,
    /// Aggregate L1D statistics (all cores).
    pub l1d: CacheStats,
    /// Aggregate L2 statistics (all cores).
    pub l2: CacheStats,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// Memory bus statistics.
    pub bus: BusStats,
}

impl SimResult {
    /// Sum of per-context IPCs (instantaneous IPC throughput).
    pub fn total_ipc(&self) -> f64 {
        self.ipc.iter().sum()
    }
}

/// Per-hardware-context execution state.
struct ThreadState {
    gen: TraceGen,
    /// Completion times of in-flight instructions, program order.
    rob: VecDeque<u64>,
    /// Completion time of the youngest chain instruction.
    chain_ready: u64,
    /// Front end stalled until this cycle (branch redirect, bubbles).
    fetch_resume: u64,
    /// Completion times of outstanding memory misses (MSHR occupancy).
    outstanding: Vec<u64>,
    /// Committed instructions since the last counter reset.
    committed: u64,
    /// Index of the core this context belongs to.
    core: usize,
}

impl ThreadState {
    fn new(profile: &BenchmarkProfile, slot: usize, line_bytes: u32, core: usize) -> Self {
        ThreadState {
            gen: TraceGen::new(profile, slot, line_bytes),
            rob: VecDeque::with_capacity(256),
            chain_ready: 0,
            fetch_resume: 0,
            outstanding: Vec::with_capacity(16),
            committed: 0,
            core,
        }
    }
}

/// Private (per-core) cache levels.
struct CoreCaches {
    l1d: Cache,
    l2: Cache,
}

/// The simulated chip: cores, threads, caches, bus.
pub(crate) struct Chip<'a> {
    cfg: &'a MachineConfig,
    threads: Vec<ThreadState>,
    /// One entry for an SMT core; one per core for a multicore.
    core_caches: Vec<CoreCaches>,
    l3: Cache,
    bus: MemoryBus,
    cycle: u64,
    /// Per-core rotation state for round-robin arbitration.
    rr_offset: u64,
    /// Scratch: thread indices per core (built once).
    core_threads: Vec<Vec<usize>>,
}

impl<'a> Chip<'a> {
    /// Builds a chip with `profiles[i]` pinned to hardware context `i`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or longer than the number of contexts
    /// (callers validate); unused contexts stay idle.
    pub(crate) fn new(cfg: &'a MachineConfig, profiles: &[&BenchmarkProfile]) -> Self {
        let contexts = cfg.contexts();
        assert!(
            !profiles.is_empty() && profiles.len() <= contexts,
            "between 1 and {contexts} profiles required"
        );
        let (num_cores, threads_per_core) = match cfg.topology {
            Topology::SmtCore { threads } => (1, threads),
            Topology::Multicore { cores } => (cores, 1),
        };
        let line = cfg.l1d.line_bytes;
        let threads: Vec<ThreadState> = profiles
            .iter()
            .enumerate()
            .map(|(slot, p)| ThreadState::new(p, slot, line, slot / threads_per_core))
            .collect();
        let mut core_threads = vec![Vec::new(); num_cores];
        for (i, t) in threads.iter().enumerate() {
            core_threads[t.core].push(i);
        }
        let core_caches = (0..num_cores)
            .map(|_| CoreCaches {
                l1d: Cache::new(&cfg.l1d),
                l2: Cache::new(&cfg.l2),
            })
            .collect();
        Chip {
            cfg,
            threads,
            core_caches,
            l3: Cache::new(&cfg.l3),
            bus: MemoryBus::new(&cfg.mem),
            cycle: 0,
            rr_offset: 0,
            core_threads,
        }
    }

    /// Runs warm-up then measurement; returns per-context results.
    pub(crate) fn run(&mut self) -> SimResult {
        let warmup = self.cfg.warmup_cycles;
        let measure = self.cfg.measure_cycles;
        for _ in 0..warmup {
            self.step();
        }
        // Reset counters at the measurement boundary.
        for t in &mut self.threads {
            t.committed = 0;
        }
        for cc in &mut self.core_caches {
            cc.l1d.reset_stats();
            cc.l2.reset_stats();
        }
        self.l3.reset_stats();
        self.bus.reset_stats();
        for _ in 0..measure {
            self.step();
        }
        let committed: Vec<u64> = self.threads.iter().map(|t| t.committed).collect();
        let ipc = committed
            .iter()
            .map(|&c| c as f64 / measure as f64)
            .collect();
        let mut l1d = CacheStats::default();
        let mut l2 = CacheStats::default();
        for cc in &self.core_caches {
            l1d.accesses += cc.l1d.stats().accesses;
            l1d.hits += cc.l1d.stats().hits;
            l2.accesses += cc.l2.stats().accesses;
            l2.hits += cc.l2.stats().hits;
        }
        SimResult {
            cycles: measure,
            committed,
            ipc,
            l1d,
            l2,
            l3: self.l3.stats(),
            bus: self.bus.stats(),
        }
    }

    /// Advances the chip by one cycle: commit, then dispatch.
    fn step(&mut self) {
        self.commit();
        self.dispatch();
        self.cycle += 1;
        self.rr_offset = self.rr_offset.wrapping_add(1);
    }

    /// In-order, bandwidth-limited commit, fair-rotating across the threads
    /// of each core.
    fn commit(&mut self) {
        let width = self.cfg.core.commit_width as usize;
        for core in 0..self.core_caches.len() {
            let members = &self.core_threads[core];
            if members.is_empty() {
                continue;
            }
            let mut budget = width;
            let start = (self.rr_offset as usize) % members.len();
            for k in 0..members.len() {
                let ti = members[(start + k) % members.len()];
                let t = &mut self.threads[ti];
                while budget > 0 {
                    match t.rob.front() {
                        Some(&done) if done <= self.cycle => {
                            t.rob.pop_front();
                            t.committed += 1;
                            budget -= 1;
                        }
                        _ => break,
                    }
                }
                if budget == 0 {
                    break;
                }
            }
        }
    }

    /// Dispatches up to `dispatch_width` instructions per core, choosing
    /// threads according to the fetch policy.
    fn dispatch(&mut self) {
        let width = self.cfg.core.dispatch_width as usize;
        for core in 0..self.core_caches.len() {
            let members = self.core_threads[core].clone();
            if members.is_empty() {
                continue;
            }
            // Establish thread priority order.
            let mut order = members;
            match self.cfg.core.fetch_policy {
                FetchPolicy::Icount => {
                    // Fewest in-flight instructions first (stable sort keeps
                    // a deterministic tie-break by slot index).
                    order.sort_by_key(|&ti| self.threads[ti].rob.len());
                }
                FetchPolicy::RoundRobin => {
                    let n = order.len();
                    let start = (self.rr_offset as usize) % n;
                    order.rotate_left(start);
                }
            }
            let mut budget = width;
            for &ti in &order {
                if budget == 0 {
                    break;
                }
                budget = self.dispatch_thread(core, ti, budget);
            }
        }
    }

    /// Dispatches from one thread until its budget share runs out or it
    /// stalls; returns the remaining budget.
    fn dispatch_thread(&mut self, core: usize, ti: usize, mut budget: usize) -> usize {
        if self.threads[ti].fetch_resume > self.cycle {
            return budget;
        }
        while budget > 0 {
            if !self.rob_has_space(core, ti) {
                break;
            }
            let insn = self.threads[ti].gen.next_insn();
            let stall = self.execute(core, ti, insn);
            budget -= 1;
            if stall {
                break;
            }
        }
        budget
    }

    /// Checks ROB availability under the configured partitioning.
    ///
    /// Dynamic sharing keeps a small per-thread reservation (in the spirit
    /// of DCRA, Cazorla et al., MICRO 2004) so that a thread stalled on
    /// long dependence chains through memory cannot permanently absorb
    /// every entry another thread releases during a branch redirect.
    /// The `dynamic_reservation` config switch ablates it (see the
    /// `reservation_ablation_quantifies_the_guard` test).
    fn rob_has_space(&self, core: usize, ti: usize) -> bool {
        let rob_size = self.cfg.core.rob_size as usize;
        let members = &self.core_threads[core];
        match self.cfg.core.rob_partitioning {
            RobPartitioning::Dynamic => {
                if !self.cfg.core.dynamic_reservation {
                    // Ablation mode: a fully shared pool with no guarantee.
                    let used: usize = members.iter().map(|&i| self.threads[i].rob.len()).sum();
                    return used < rob_size;
                }
                let n = members.len().max(1);
                let guarantee = (rob_size / (4 * n)).max(2);
                let len = self.threads[ti].rob.len();
                if len < guarantee {
                    return true;
                }
                let shared_capacity = rob_size - n * guarantee;
                let shared_used: usize = members
                    .iter()
                    .map(|&i| self.threads[i].rob.len().saturating_sub(guarantee))
                    .sum();
                shared_used < shared_capacity
            }
            RobPartitioning::Static => {
                let share = rob_size / members.len().max(1);
                self.threads[ti].rob.len() < share.max(1)
            }
        }
    }

    /// Models one instruction's execution; returns `true` if the thread's
    /// front end must stall after this instruction (mispredicted branch or
    /// fetch bubble).
    fn execute(&mut self, core: usize, ti: usize, insn: Insn) -> bool {
        let now = self.cycle;
        let chain_ready = self.threads[ti].chain_ready;
        // Dispatch itself consumes this cycle; execution can start next.
        let mut ready = now + 1;
        if insn.on_chain {
            ready = ready.max(chain_ready);
        }
        let mut stall = false;
        let done = match insn.kind {
            InsnKind::Alu => ready + 1,
            InsnKind::LongOp => ready + self.cfg.core.long_op_latency,
            InsnKind::Branch => {
                let resolve = ready + 1;
                if insn.mispredicted {
                    self.threads[ti].fetch_resume = resolve + self.cfg.core.branch_redirect_penalty;
                    stall = true;
                }
                resolve
            }
            InsnKind::Store => {
                // Stores retire via the store buffer: completion is fast,
                // but the write-allocated line still occupies an MSHR and
                // bus bandwidth on an L3 miss, so store-heavy streaming
                // threads feel bandwidth backpressure instead of flooding
                // the bus without bound.
                let (_lat, l3_miss) = self.access_memory(core, insn.addr, ready);
                if l3_miss {
                    let _fill = self.memory_fill(ti, now);
                }
                ready + 1
            }
            InsnKind::Load => {
                let (lat, l3_miss) = self.access_memory(core, insn.addr, ready);
                if l3_miss {
                    // The line starts its journey when the load dispatches
                    // (addresses are known then); a dependence-delayed
                    // consumer waits for whichever is later, its operands
                    // or the fill.
                    let fill = self.memory_fill(ti, now);
                    ready.max(fill)
                } else {
                    ready + lat
                }
            }
        };
        let t = &mut self.threads[ti];
        if insn.on_chain {
            t.chain_ready = t.chain_ready.max(done);
        }
        if insn.fetch_bubble {
            t.fetch_resume = t.fetch_resume.max(now + 2);
            stall = true;
        }
        t.rob.push_back(done);
        stall
    }

    /// Cache-hierarchy lookup for `addr`; returns `(hit latency, l3 miss)`.
    /// On an L3 miss the memory path latency is handled by the caller.
    fn access_memory(&mut self, core: usize, addr: u64, _ready: u64) -> (u64, bool) {
        let cc = &mut self.core_caches[core];
        if cc.l1d.access(addr) {
            return (self.cfg.l1d.latency, false);
        }
        if cc.l2.access(addr) {
            return (self.cfg.l2.latency, false);
        }
        if self.l3.access(addr) {
            return (self.cfg.l3.latency, false);
        }
        (0, true)
    }

    /// Issues a memory-line fill for thread `ti` starting no earlier than
    /// `now`: waits for an MSHR, queues on the shared bus, and returns the
    /// cycle at which the line arrives.
    ///
    /// All requests are issued in the dispatch-time domain (which advances
    /// monotonically), so bus queueing reflects genuine bandwidth demand;
    /// dependence-delayed consumers simply wait for `max(operands, fill)`.
    fn memory_fill(&mut self, ti: usize, now: u64) -> u64 {
        let issue = self.acquire_mshr(ti, now);
        let mem_lat = self.bus.request(issue);
        let fill = issue + self.cfg.l3.latency + mem_lat;
        self.threads[ti].outstanding.push(fill);
        fill
    }

    /// Blocks until an MSHR is available; returns the (possibly delayed)
    /// issue time.
    fn acquire_mshr(&mut self, ti: usize, now: u64) -> u64 {
        let cap = self.cfg.core.mshrs_per_thread as usize;
        let t = &mut self.threads[ti];
        t.outstanding.retain(|&fill| fill > now);
        if t.outstanding.len() < cap {
            return now;
        }
        // Wait for the earliest outstanding miss to return.
        let earliest = t
            .outstanding
            .iter()
            .copied()
            .min()
            .expect("outstanding non-empty when at capacity");
        let issue = now.max(earliest);
        t.outstanding.retain(|&fill| fill > issue);
        issue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::profile::BenchmarkProfile;

    fn fast_cfg() -> MachineConfig {
        MachineConfig::smt4().with_windows(5_000, 20_000)
    }

    fn compute_profile() -> BenchmarkProfile {
        let mut p = BenchmarkProfile::balanced("compute", 11);
        p.load_frac = 0.10;
        p.store_frac = 0.05;
        p.long_op_frac = 0.02;
        p.dep_frac = 0.20;
        p.hot_lines = 64;
        p.footprint_lines = 128;
        p.mispredict_rate = 0.01;
        p
    }

    fn memory_profile() -> BenchmarkProfile {
        let mut p = BenchmarkProfile::balanced("memory", 13);
        p.load_frac = 0.35;
        p.dep_frac = 0.55;
        p.hot_lines = 512;
        p.hot_frac = 0.4;
        p.footprint_lines = 400_000;
        p.streaming_frac = 0.2;
        p
    }

    #[test]
    fn solo_compute_job_reaches_high_ipc() {
        let cfg = fast_cfg();
        let p = compute_profile();
        let mut chip = Chip::new(&cfg, &[&p]);
        let res = chip.run();
        assert!(
            res.ipc[0] > 1.5,
            "compute-bound solo IPC should be high, got {}",
            res.ipc[0]
        );
        assert!(res.ipc[0] <= 4.0, "IPC cannot exceed dispatch width");
    }

    #[test]
    fn solo_memory_job_has_low_ipc() {
        let cfg = fast_cfg();
        let p = memory_profile();
        let mut chip = Chip::new(&cfg, &[&p]);
        let res = chip.run();
        assert!(
            res.ipc[0] < 1.0,
            "memory-bound solo IPC should be low, got {}",
            res.ipc[0]
        );
        assert!(res.bus.transfers > 0, "memory job must touch DRAM");
    }

    #[test]
    fn smt_contention_slows_threads_down() {
        let cfg = fast_cfg();
        let p = compute_profile();
        let solo = Chip::new(&cfg, &[&p]).run().ipc[0];
        let four = Chip::new(&cfg, &[&p, &p, &p, &p]).run();
        for &ipc in &four.ipc {
            assert!(
                ipc < solo,
                "co-running must not speed a thread up (solo {solo}, co {ipc})"
            );
        }
        // Shared 4-wide dispatch: aggregate can exceed solo, each thread
        // gets roughly a quarter of the front end.
        assert!(four.total_ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = fast_cfg();
        let a = compute_profile();
        let b = memory_profile();
        let r1 = Chip::new(&cfg, &[&a, &b]).run();
        let r2 = Chip::new(&cfg, &[&a, &b]).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn multicore_isolates_core_bandwidth() {
        let cfg = MachineConfig::quadcore().with_windows(5_000, 20_000);
        let p = compute_profile();
        let solo = Chip::new(&cfg, &[&p]).run().ipc[0];
        let res = Chip::new(&cfg, &[&p, &p, &p, &p]).run();
        // Compute jobs barely share anything on a multicore: each core
        // should stay near solo speed.
        for &ipc in &res.ipc {
            assert!(
                ipc > 0.8 * solo,
                "private-core compute job should run near solo speed ({ipc} vs {solo})"
            );
        }
    }

    #[test]
    fn memory_jobs_interfere_more_on_shared_bus() {
        let cfg = MachineConfig::quadcore().with_windows(5_000, 20_000);
        let p = memory_profile();
        let solo = Chip::new(&cfg, &[&p]).run().ipc[0];
        let res = Chip::new(&cfg, &[&p, &p, &p, &p]).run();
        let min = res.ipc.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min < solo,
            "bus contention should slow memory jobs ({min} vs solo {solo})"
        );
        assert!(res.bus.mean_queue_delay() > 0.0);
    }

    #[test]
    fn static_partitioning_changes_behaviour() {
        let cfg_dyn = fast_cfg();
        let cfg_static = fast_cfg().with_rob_partitioning(RobPartitioning::Static);
        let a = compute_profile();
        let b = memory_profile();
        let r_dyn = Chip::new(&cfg_dyn, &[&a, &b, &b, &b]).run();
        let r_static = Chip::new(&cfg_static, &[&a, &b, &b, &b]).run();
        // With three memory threads hogging a dynamic ROB, the compute
        // thread benefits from a guaranteed static share.
        assert_ne!(r_dyn.ipc, r_static.ipc);
    }

    #[test]
    fn icount_favours_fast_threads_over_round_robin() {
        let cfg_ic = fast_cfg();
        let cfg_rr = fast_cfg().with_fetch_policy(FetchPolicy::RoundRobin);
        let a = compute_profile();
        let b = memory_profile();
        let r_ic = Chip::new(&cfg_ic, &[&a, &b, &b, &b]).run();
        let r_rr = Chip::new(&cfg_rr, &[&a, &b, &b, &b]).run();
        // ICOUNT keeps the memory threads (which clog the ROB) from
        // monopolising dispatch, so the compute thread does better.
        assert!(
            r_ic.ipc[0] >= r_rr.ipc[0] * 0.95,
            "ICOUNT should not hurt the compute thread: {} vs {}",
            r_ic.ipc[0],
            r_rr.ipc[0]
        );
    }

    #[test]
    fn committed_counts_match_ipc() {
        let cfg = fast_cfg();
        let p = compute_profile();
        let res = Chip::new(&cfg, &[&p, &p]).run();
        for (c, ipc) in res.committed.iter().zip(&res.ipc) {
            assert!((ipc - *c as f64 / res.cycles as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "profiles required")]
    fn too_many_profiles_panics() {
        let cfg = fast_cfg();
        let p = compute_profile();
        let _ = Chip::new(&cfg, &[&p, &p, &p, &p, &p]);
    }

    #[test]
    fn reservation_ablation_quantifies_the_guard() {
        // The design choice DESIGN.md documents. With the current memory
        // path (dispatch-time MSHR gating) the catastrophic clogging the
        // reservation was introduced against no longer occurs, so its
        // effect is a small protective margin; the ablation asserts it
        // never *hurts* the victim thread and that the knob is live.
        let mut cfg_off = fast_cfg();
        cfg_off.core.dynamic_reservation = false;
        let cfg_on = fast_cfg();
        let a = compute_profile();
        // A pathological aggressor: nearly every load misses to DRAM and
        // chains serialise, so its ROB entries linger for thousands of
        // cycles — the clogging scenario the reservation defends against.
        let mut b = memory_profile();
        b.stack_frac = 0.05;
        b.hot_frac = 0.10;
        b.dep_frac = 0.65;
        b.load_frac = 0.40;
        b.footprint_lines = 1 << 20;
        let with = Chip::new(&cfg_on, &[&a, &b, &b, &b]).run();
        let without = Chip::new(&cfg_off, &[&a, &b, &b, &b]).run();
        assert!(
            with.ipc[0] >= 0.95 * without.ipc[0],
            "reservation must not hurt the compute thread: with {}, without {}",
            with.ipc[0],
            without.ipc[0]
        );
        assert_ne!(with.ipc, without.ipc, "the ablation knob must be live");
    }

    #[test]
    fn cache_stats_populated() {
        let cfg = fast_cfg();
        let p = memory_profile();
        let res = Chip::new(&cfg, &[&p]).run();
        assert!(res.l1d.accesses > 0);
        assert!(res.l3.accesses > 0, "memory job must reach L3");
        assert!(res.l1d.hit_rate() > 0.0);
    }
}
