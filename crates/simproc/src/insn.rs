//! Dynamic instruction representation produced by the trace generators.

/// Classes of dynamic instructions the core model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnKind {
    /// Single-cycle integer operation.
    Alu,
    /// Long-latency operation (floating point, multiply/divide).
    LongOp,
    /// Memory load; latency depends on the cache hierarchy.
    Load,
    /// Memory store; retires quickly via the store buffer but touches caches.
    Store,
    /// Conditional branch; may be mispredicted.
    Branch,
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Insn {
    /// Instruction class.
    pub kind: InsnKind,
    /// Byte address touched by loads/stores (line-aligned); 0 otherwise.
    pub addr: u64,
    /// Whether this instruction extends the thread's critical dependence
    /// chain (serialising behind the previous chain instruction).
    pub on_chain: bool,
    /// For branches: whether the prediction was wrong.
    pub mispredicted: bool,
    /// Whether fetching this instruction incurred a front-end bubble
    /// (models I-cache misses / decode roughness).
    pub fetch_bubble: bool,
}

impl Insn {
    /// True for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, InsnKind::Load | InsnKind::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        let mut i = Insn {
            kind: InsnKind::Load,
            addr: 64,
            on_chain: false,
            mispredicted: false,
            fetch_bubble: false,
        };
        assert!(i.is_memory());
        i.kind = InsnKind::Store;
        assert!(i.is_memory());
        i.kind = InsnKind::Alu;
        assert!(!i.is_memory());
        i.kind = InsnKind::Branch;
        assert!(!i.is_memory());
    }
}
