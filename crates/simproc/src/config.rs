//! Machine configuration: topology, core parameters, cache geometry, memory.
//!
//! Two ready-made configurations mirror the paper's experimental setup
//! (Section V-A):
//!
//! * [`MachineConfig::smt4`] — one 4-wide out-of-order core with 4 SMT thread
//!   contexts; core resources, caches and the memory bus are all shared.
//! * [`MachineConfig::quadcore`] — four 4-wide out-of-order cores with
//!   private L1/L2, a shared last-level cache and a shared memory bus.

/// Fetch policy arbitrating front-end bandwidth between SMT threads
/// (Section VII of the paper compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchPolicy {
    /// Prioritise the thread with the fewest in-flight instructions
    /// (Tullsen et al., ISCA 1996). The paper's default.
    #[default]
    Icount,
    /// Rotate priority between threads regardless of occupancy.
    RoundRobin,
}

/// Reorder-buffer sharing discipline between SMT threads (Section VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RobPartitioning {
    /// All entries in a shared pool; one thread may occupy the whole ROB.
    /// The paper's default.
    #[default]
    Dynamic,
    /// Each thread owns `rob_size / threads` entries.
    Static,
}

/// Chip topology: how many cores and how many SMT contexts per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A single core with `threads` SMT hardware contexts sharing all
    /// resources (core bandwidth, caches, memory bus).
    SmtCore {
        /// Number of hardware thread contexts.
        threads: usize,
    },
    /// `cores` single-threaded cores with private L1/L2, shared L3 and bus.
    Multicore {
        /// Number of cores.
        cores: usize,
    },
}

impl Topology {
    /// Total number of hardware thread contexts (jobs that run at once).
    pub fn contexts(&self) -> usize {
        match *self {
            Topology::SmtCore { threads } => threads,
            Topology::Multicore { cores } => cores,
        }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles (to the requesting core).
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of cache lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics (in [`validate`](Self::validate)) if not a power of two.
    pub fn sets(&self) -> u64 {
        self.lines() / self.ways as u64
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("associativity must be positive".into());
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes as u64 * self.ways as u64)
        {
            return Err(format!(
                "capacity {} not divisible by ways*line ({}*{})",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Out-of-order core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreParams {
    /// Instructions dispatched (renamed/inserted into the ROB) per cycle.
    pub dispatch_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries (shared across SMT threads).
    pub rob_size: u32,
    /// SMT fetch arbitration policy.
    pub fetch_policy: FetchPolicy,
    /// ROB sharing discipline.
    pub rob_partitioning: RobPartitioning,
    /// Front-end refill penalty after a branch misprediction, in cycles.
    pub branch_redirect_penalty: u64,
    /// Outstanding long-latency misses per thread (MSHR-style cap).
    pub mshrs_per_thread: u32,
    /// In [`RobPartitioning::Dynamic`] mode, reserve a small per-thread
    /// slice of ROB entries (DCRA-style) as a guard against memory-stalled
    /// threads absorbing the whole shared pool. Exposed as a switch so the
    /// ablation test can quantify the effect.
    pub dynamic_reservation: bool,
    /// Latency of long (floating-point/complex) operations, in cycles.
    pub long_op_latency: u64,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            dispatch_width: 4,
            commit_width: 4,
            rob_size: 128,
            fetch_policy: FetchPolicy::Icount,
            rob_partitioning: RobPartitioning::Dynamic,
            branch_redirect_penalty: 10,
            mshrs_per_thread: 8,
            dynamic_reservation: true,
            long_op_latency: 6,
        }
    }
}

/// Memory (DRAM + bus) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemParams {
    /// Flat access latency in cycles (row access + transfer for one line).
    pub latency: u64,
    /// Bus occupancy per transfer in cycles; the reciprocal is the peak
    /// bandwidth in lines per cycle. Shared between all cores/threads, so
    /// contention appears as queueing delay.
    pub cycles_per_transfer: u64,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            latency: 160,
            cycles_per_transfer: 8,
        }
    }
}

/// Complete machine description consumed by [`crate::Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Chip topology.
    pub topology: Topology,
    /// Core microarchitecture.
    pub core: CoreParams,
    /// First-level data cache (per core; shared by SMT threads of a core).
    pub l1d: CacheGeometry,
    /// Second-level cache (private per core in [`Topology::Multicore`]).
    pub l2: CacheGeometry,
    /// Last-level cache (always shared chip-wide).
    pub l3: CacheGeometry,
    /// Memory system.
    pub mem: MemParams,
    /// Cycles simulated before measurement starts (cache warm-up).
    pub warmup_cycles: u64,
    /// Cycles over which IPC is measured.
    pub measure_cycles: u64,
}

impl MachineConfig {
    /// The paper's first configuration: a 4-way SMT, 4-wide out-of-order
    /// core (Section V-A) with ICOUNT fetch and dynamic ROB sharing.
    pub fn smt4() -> Self {
        MachineConfig {
            topology: Topology::SmtCore { threads: 4 },
            core: CoreParams::default(),
            l1d: CacheGeometry {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheGeometry {
                size_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 12,
            },
            l3: CacheGeometry {
                size_bytes: 4 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 35,
            },
            mem: MemParams::default(),
            warmup_cycles: 60_000,
            measure_cycles: 240_000,
        }
    }

    /// The paper's second configuration: four 4-wide out-of-order cores with
    /// private L1/L2, shared L3 and shared memory bus (Section V-A).
    ///
    /// The memory system is provisioned wider than the single-core SMT
    /// die's (3 vs 8 cycles of bus occupancy per line): a four-core chip
    /// ships with more DRAM channels, and the paper observes that quad-core
    /// interference is "much smaller and more evenly divided" than SMT
    /// interference — with an SMT-sized bus, four memory-intensive cores
    /// would starve each other far beyond what the paper reports.
    pub fn quadcore() -> Self {
        MachineConfig {
            topology: Topology::Multicore { cores: 4 },
            l3: CacheGeometry {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 35,
            },
            mem: MemParams {
                latency: 160,
                cycles_per_transfer: 3,
            },
            ..MachineConfig::smt4()
        }
    }

    /// A forward-looking 8-way SMT core: the big-machine configuration
    /// behind the K = 8 scaling studies. Doubles the SMT4 die's shared
    /// resources — ROB entries, dispatch/commit width and last-level
    /// cache — so eight contexts contend at roughly the per-thread
    /// pressure of the paper's 4-way core rather than starving.
    pub fn smt8() -> Self {
        MachineConfig {
            topology: Topology::SmtCore { threads: 8 },
            core: CoreParams {
                dispatch_width: 8,
                commit_width: 8,
                rob_size: 256,
                mshrs_per_thread: 8,
                ..CoreParams::default()
            },
            l3: CacheGeometry {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 35,
            },
            mem: MemParams {
                latency: 160,
                cycles_per_transfer: 4,
            },
            ..MachineConfig::smt4()
        }
    }

    /// A speculative 10-way SMT core: the stress configuration behind the
    /// K = 10 scaling leg. Scales the SMT8 die's shared resources by the
    /// same per-context ratio — ROB entries, dispatch/commit width, MSHRs
    /// and last-level cache — so ten contexts contend at comparable
    /// per-thread pressure instead of measuring pure starvation.
    pub fn smt10() -> Self {
        MachineConfig {
            topology: Topology::SmtCore { threads: 10 },
            core: CoreParams {
                dispatch_width: 10,
                commit_width: 10,
                rob_size: 320,
                mshrs_per_thread: 10,
                ..CoreParams::default()
            },
            l3: CacheGeometry {
                size_bytes: 10 << 20,
                ways: 20,
                line_bytes: 64,
                latency: 38,
            },
            mem: MemParams {
                latency: 160,
                cycles_per_transfer: 4,
            },
            ..MachineConfig::smt4()
        }
    }

    /// Returns a copy with the given fetch policy (Section VII sweeps).
    pub fn with_fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.core.fetch_policy = policy;
        self
    }

    /// Returns a copy with the given ROB partitioning (Section VII sweeps).
    pub fn with_rob_partitioning(mut self, partitioning: RobPartitioning) -> Self {
        self.core.rob_partitioning = partitioning;
        self
    }

    /// Returns a copy with shorter warm-up/measurement windows, for tests.
    pub fn with_windows(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_cycles = warmup;
        self.measure_cycles = measure;
        self
    }

    /// Number of hardware contexts (jobs running simultaneously).
    pub fn contexts(&self) -> usize {
        self.topology.contexts()
    }

    /// Checks internal consistency of the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.contexts() == 0 {
            return Err("machine must have at least one context".into());
        }
        if self.core.dispatch_width == 0 || self.core.commit_width == 0 {
            return Err("core widths must be positive".into());
        }
        if self.core.rob_size == 0 {
            return Err("ROB must have at least one entry".into());
        }
        if self.core.rob_partitioning == RobPartitioning::Static {
            if let Topology::SmtCore { threads } = self.topology {
                if (self.core.rob_size as usize) < threads {
                    return Err("static partitioning needs >= 1 ROB entry per thread".into());
                }
            }
        }
        if self.core.mshrs_per_thread == 0 {
            return Err("need at least one MSHR per thread".into());
        }
        if self.mem.cycles_per_transfer == 0 {
            return Err("bus occupancy must be positive".into());
        }
        for (name, g) in [("l1d", &self.l1d), ("l2", &self.l2), ("l3", &self.l3)] {
            g.validate().map_err(|e| format!("{name}: {e}"))?;
        }
        if self.l1d.line_bytes != self.l2.line_bytes || self.l2.line_bytes != self.l3.line_bytes {
            return Err("all cache levels must share one line size".into());
        }
        if self.measure_cycles == 0 {
            return Err("measurement window must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        MachineConfig::smt4().validate().unwrap();
        MachineConfig::quadcore().validate().unwrap();
        MachineConfig::smt8().validate().unwrap();
        MachineConfig::smt10().validate().unwrap();
    }

    #[test]
    fn smt10_scales_smt8_shared_resources_per_context() {
        let cfg = MachineConfig::smt10();
        assert_eq!(cfg.contexts(), 10);
        assert_eq!(cfg.topology, Topology::SmtCore { threads: 10 });
        let smt8 = MachineConfig::smt8();
        // Same per-context pressure: every scaled resource keeps the
        // SMT8 ratio of resource / contexts.
        assert_eq!(cfg.core.rob_size * 8, smt8.core.rob_size * 10);
        assert_eq!(cfg.core.dispatch_width * 8, smt8.core.dispatch_width * 10);
        assert_eq!(cfg.core.mshrs_per_thread, 10);
        assert_eq!(cfg.l3.size_bytes * 8, smt8.l3.size_bytes * 10);
    }

    #[test]
    fn smt8_has_eight_contexts_and_doubled_shared_resources() {
        let cfg = MachineConfig::smt8();
        assert_eq!(cfg.contexts(), 8);
        assert_eq!(cfg.topology, Topology::SmtCore { threads: 8 });
        let smt4 = MachineConfig::smt4();
        assert_eq!(cfg.core.rob_size, 2 * smt4.core.rob_size);
        assert_eq!(cfg.core.dispatch_width, 2 * smt4.core.dispatch_width);
        assert!(cfg.l3.size_bytes > smt4.l3.size_bytes);
    }

    #[test]
    fn smt4_has_four_contexts_sharing_one_core() {
        let cfg = MachineConfig::smt4();
        assert_eq!(cfg.contexts(), 4);
        assert_eq!(cfg.topology, Topology::SmtCore { threads: 4 });
    }

    #[test]
    fn quadcore_has_four_cores_and_bigger_l3() {
        let cfg = MachineConfig::quadcore();
        assert_eq!(cfg.contexts(), 4);
        assert_eq!(cfg.topology, Topology::Multicore { cores: 4 });
        assert!(cfg.l3.size_bytes > MachineConfig::smt4().l3.size_bytes);
    }

    #[test]
    fn cache_geometry_derived_quantities() {
        let g = CacheGeometry {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 3,
        };
        assert_eq!(g.lines(), 512);
        assert_eq!(g.sets(), 64);
        g.validate().unwrap();
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut g = CacheGeometry {
            size_bytes: 3000,
            ways: 8,
            line_bytes: 64,
            latency: 3,
        };
        assert!(g.validate().is_err());
        g.size_bytes = 32 << 10;
        g.line_bytes = 48; // not a power of two
        assert!(g.validate().is_err());
    }

    #[test]
    fn policy_builders_apply() {
        let cfg = MachineConfig::smt4()
            .with_fetch_policy(FetchPolicy::RoundRobin)
            .with_rob_partitioning(RobPartitioning::Static);
        assert_eq!(cfg.core.fetch_policy, FetchPolicy::RoundRobin);
        assert_eq!(cfg.core.rob_partitioning, RobPartitioning::Static);
        cfg.validate().unwrap();
    }

    #[test]
    fn mismatched_line_sizes_rejected() {
        let mut cfg = MachineConfig::smt4();
        cfg.l2.line_bytes = 128;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_width_rejected() {
        let mut cfg = MachineConfig::smt4();
        cfg.core.dispatch_width = 0;
        assert!(cfg.validate().is_err());
    }
}
