//! A fast, deterministic SMT / multicore performance simulator.
//!
//! This crate is the processor substrate for the reproduction of
//! *"Revisiting Symbiotic Job Scheduling"* (Eyerman, Michaud, Rogiest,
//! ISPASS 2015). The paper simulated SPEC CPU2006 coschedules with Sniper;
//! this crate provides an equivalent, self-contained stand-in in the same
//! modelling family (instruction-window-centric): it reports the per-job
//! IPC of any coschedule of synthetic benchmark profiles on
//!
//! * a 4-way SMT, 4-wide out-of-order core ([`MachineConfig::smt4`]), and
//! * a quad-core with private L1/L2, shared L3 and shared memory bus
//!   ([`MachineConfig::quadcore`]),
//!
//! including the fetch-policy (ICOUNT / round-robin) and ROB-partitioning
//! (dynamic / static) axes the paper sweeps in its Section VII case study.
//!
//! Jobs are *statistical profiles* ([`profile::BenchmarkProfile`]) expanded
//! into endless deterministic instruction streams ([`trace::TraceGen`]);
//! interference between co-running jobs emerges from shared dispatch
//! bandwidth, shared/partitioned ROB entries, shared caches and a
//! bandwidth-limited memory bus — the same resources the paper's analysis
//! attributes job symbiosis to.
//!
//! # Quick start
//!
//! ```
//! use simproc::{Machine, MachineConfig, profile::BenchmarkProfile};
//!
//! # fn main() -> Result<(), simproc::MachineError> {
//! let machine = Machine::new(MachineConfig::smt4().with_windows(2_000, 8_000))?;
//! let mut mem_job = BenchmarkProfile::balanced("memory-ish", 1);
//! mem_job.footprint_lines = 1 << 18;
//! mem_job.hot_frac = 0.5;
//! let cpu_job = BenchmarkProfile::balanced("compute-ish", 2);
//!
//! let solo = machine.simulate_solo(&cpu_job)?;
//! let coscheduled = machine.simulate(&[&cpu_job, &mem_job, &mem_job, &mem_job])?;
//! assert!(coscheduled.ipc[0] <= solo.ipc[0]); // interference can only hurt
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod config;
mod engine;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod profile;
pub mod rng;
pub mod trace;

pub use config::{
    CacheGeometry, CoreParams, FetchPolicy, MachineConfig, MemParams, RobPartitioning, Topology,
};
pub use engine::SimResult;
pub use machine::{Machine, MachineError};
pub use profile::BenchmarkProfile;
