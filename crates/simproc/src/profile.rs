//! Statistical benchmark profiles.
//!
//! The paper runs 12 SPEC CPU2006 benchmarks through the Sniper simulator.
//! We cannot redistribute SPEC binaries or traces, so each benchmark is
//! replaced by a *statistical profile*: instruction mix, branch-misprediction
//! rate, dependence-chain density (ILP), and a two-level working-set model of
//! its memory behaviour (hot set + total footprint + streaming fraction).
//! A seeded generator expands a profile into an endless synthetic
//! instruction stream (see [`crate::trace::TraceGen`]).
//!
//! This preserves what the study actually depends on: job types that span
//! low- to high-interference behaviour and differ in standalone IPC
//! (Section V-A: benchmarks were selected to "approximately uniformly cover
//! the space of low- to high-interference benchmarks").

/// A statistical description of a benchmark's dynamic behaviour.
///
/// Fractions refer to the dynamic instruction stream and must satisfy
/// `load_frac + store_frac + branch_frac + long_op_frac <= 1` (the rest are
/// single-cycle ALU operations). See [`BenchmarkProfile::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Human-readable name (e.g. `"mcf"`).
    pub name: String,
    /// Fraction of dynamic instructions that are loads.
    pub load_frac: f64,
    /// Fraction that are stores.
    pub store_frac: f64,
    /// Fraction that are conditional branches.
    pub branch_frac: f64,
    /// Fraction that are long-latency (FP/mul/div) operations.
    pub long_op_frac: f64,
    /// Probability a branch is mispredicted.
    pub mispredict_rate: f64,
    /// Probability an instruction serialises behind the previous
    /// chain instruction (higher = less ILP).
    pub dep_frac: f64,
    /// Lines in the innermost working set (stack frames, loop-resident
    /// data); sized to fit comfortably in L1.
    pub stack_lines: u64,
    /// Probability a non-streaming access falls in the innermost set.
    pub stack_frac: f64,
    /// Lines in the hot working set (captured by L1/L2 when not thrashed).
    pub hot_lines: u64,
    /// Total footprint in lines (hot + cold; exercises L3/memory).
    pub footprint_lines: u64,
    /// Probability a non-streaming access falls in the hot set.
    pub hot_frac: f64,
    /// Fraction of accesses that walk the footprint sequentially
    /// (streaming, prefetch-friendly in real machines; here: low reuse).
    pub streaming_frac: f64,
    /// Per-instruction probability of a front-end bubble (models I-cache
    /// and decode roughness for large-code benchmarks like gcc/perlbench).
    pub frontend_stall_rate: f64,
    /// Base RNG seed; each (thread slot, run) derives a unique stream.
    pub seed: u64,
}

impl BenchmarkProfile {
    /// A neutral mid-range profile useful as a starting point in tests and
    /// examples; tweak fields from here.
    pub fn balanced(name: &str, seed: u64) -> Self {
        BenchmarkProfile {
            name: name.to_owned(),
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            long_op_frac: 0.05,
            mispredict_rate: 0.04,
            dep_frac: 0.35,
            stack_lines: 48,
            stack_frac: 0.70,
            hot_lines: 256,
            footprint_lines: 8_192,
            hot_frac: 0.90,
            streaming_frac: 0.05,
            frontend_stall_rate: 0.01,
            seed,
        }
    }

    /// Checks the profile's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("long_op_frac", self.long_op_frac),
            ("mispredict_rate", self.mispredict_rate),
            ("dep_frac", self.dep_frac),
            ("stack_frac", self.stack_frac),
            ("hot_frac", self.hot_frac),
            ("streaming_frac", self.streaming_frac),
            ("frontend_stall_rate", self.frontend_stall_rate),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0, 1]"));
            }
        }
        let mix = self.load_frac + self.store_frac + self.branch_frac + self.long_op_frac;
        if mix > 1.0 + 1e-12 {
            return Err(format!("instruction mix sums to {mix} > 1"));
        }
        if self.footprint_lines == 0 {
            return Err("footprint must be at least one line".into());
        }
        if self.hot_lines == 0 {
            return Err("hot set must be at least one line".into());
        }
        if self.stack_lines == 0 {
            return Err("stack set must be at least one line".into());
        }
        if self.stack_lines > self.hot_lines {
            return Err(format!(
                "stack set ({}) larger than hot set ({})",
                self.stack_lines, self.hot_lines
            ));
        }
        if self.hot_lines > self.footprint_lines {
            return Err(format!(
                "hot set ({}) larger than footprint ({})",
                self.hot_lines, self.footprint_lines
            ));
        }
        if self.name.is_empty() {
            return Err("profile name must be non-empty".into());
        }
        Ok(())
    }

    /// Fraction of ALU (single-cycle) instructions implied by the mix.
    pub fn alu_frac(&self) -> f64 {
        1.0 - self.load_frac - self.store_frac - self.branch_frac - self.long_op_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_profile_validates() {
        let p = BenchmarkProfile::balanced("test", 1);
        p.validate().unwrap();
        assert!(p.alu_frac() > 0.0);
    }

    #[test]
    fn mix_overflow_rejected() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.load_frac = 0.9;
        p.store_frac = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn out_of_range_probability_rejected() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.mispredict_rate = 1.5;
        assert!(p.validate().is_err());
        p.mispredict_rate = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn stack_must_fit_in_hot_set() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.stack_lines = p.hot_lines + 1;
        assert!(p.validate().is_err());
        p.stack_lines = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn hot_set_must_fit_in_footprint() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.hot_lines = p.footprint_lines + 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_footprint_rejected() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.footprint_lines = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn empty_name_rejected() {
        let mut p = BenchmarkProfile::balanced("x", 1);
        p.name.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn alu_frac_complements_mix() {
        let p = BenchmarkProfile::balanced("t", 1);
        let total = p.alu_frac() + p.load_frac + p.store_frac + p.branch_frac + p.long_op_frac;
        assert!((total - 1.0).abs() < 1e-12);
    }
}
