//! Synthetic instruction-stream generation from statistical profiles.

use crate::insn::{Insn, InsnKind};
use crate::profile::BenchmarkProfile;
use crate::rng::SplitMix64;

/// Bits reserved per thread for its private address space. Multiprogrammed
/// SPEC jobs share no data, so each thread context draws addresses from a
/// disjoint region tagged with its slot index.
const THREAD_SPACE_SHIFT: u32 = 44;

/// An endless, deterministic stream of [`Insn`]s drawn from a
/// [`BenchmarkProfile`].
///
/// Two generators constructed with the same `(profile, slot)` produce the
/// same stream; different slots running the same profile produce
/// decorrelated streams over disjoint address spaces.
///
/// # Examples
///
/// ```
/// use simproc::{profile::BenchmarkProfile, trace::TraceGen};
///
/// let profile = BenchmarkProfile::balanced("demo", 7);
/// let mut gen = TraceGen::new(&profile, 0, 64);
/// let insn = gen.next_insn();
/// let _ = insn.kind;
/// ```
#[derive(Debug, Clone)]
pub struct TraceGen {
    rng: SplitMix64,
    // Cached probability thresholds (cumulative mix).
    p_load: f64,
    p_store: f64,
    p_branch: f64,
    p_long: f64,
    mispredict_rate: f64,
    dep_frac: f64,
    frontend_stall_rate: f64,
    stack_lines: u64,
    stack_frac: f64,
    hot_lines: u64,
    footprint_lines: u64,
    hot_frac: f64,
    streaming_frac: f64,
    line_bytes: u64,
    thread_tag: u64,
    stream_pos: u64,
}

impl TraceGen {
    /// Creates a generator for `profile` running on hardware context `slot`.
    ///
    /// `line_bytes` must match the machine's cache line size so generated
    /// addresses are line-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: &BenchmarkProfile, slot: usize, line_bytes: u32) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let rng = SplitMix64::new(profile.seed).derive(slot as u64);
        TraceGen {
            rng,
            p_load: profile.load_frac,
            p_store: profile.load_frac + profile.store_frac,
            p_branch: profile.load_frac + profile.store_frac + profile.branch_frac,
            p_long: profile.load_frac
                + profile.store_frac
                + profile.branch_frac
                + profile.long_op_frac,
            mispredict_rate: profile.mispredict_rate,
            dep_frac: profile.dep_frac,
            frontend_stall_rate: profile.frontend_stall_rate,
            stack_lines: profile.stack_lines,
            stack_frac: profile.stack_frac,
            hot_lines: profile.hot_lines,
            footprint_lines: profile.footprint_lines,
            hot_frac: profile.hot_frac,
            streaming_frac: profile.streaming_frac,
            line_bytes: line_bytes as u64,
            thread_tag: (slot as u64 + 1) << THREAD_SPACE_SHIFT,
            stream_pos: 0,
        }
    }

    /// Produces the next dynamic instruction.
    pub fn next_insn(&mut self) -> Insn {
        let class_draw = self.rng.next_f64();
        let on_chain = self.rng.chance(self.dep_frac);
        let fetch_bubble = self.rng.chance(self.frontend_stall_rate);
        if class_draw < self.p_load {
            Insn {
                kind: InsnKind::Load,
                addr: self.next_addr(),
                on_chain,
                mispredicted: false,
                fetch_bubble,
            }
        } else if class_draw < self.p_store {
            Insn {
                kind: InsnKind::Store,
                addr: self.next_addr(),
                on_chain: false, // stores retire via the store buffer
                mispredicted: false,
                fetch_bubble,
            }
        } else if class_draw < self.p_branch {
            Insn {
                kind: InsnKind::Branch,
                addr: 0,
                on_chain: true, // branch resolution waits on its inputs
                mispredicted: self.rng.chance(self.mispredict_rate),
                fetch_bubble,
            }
        } else if class_draw < self.p_long {
            Insn {
                kind: InsnKind::LongOp,
                addr: 0,
                on_chain,
                mispredicted: false,
                fetch_bubble,
            }
        } else {
            Insn {
                kind: InsnKind::Alu,
                addr: 0,
                on_chain,
                mispredicted: false,
                fetch_bubble,
            }
        }
    }

    /// Next data address (line-aligned, inside this thread's region).
    fn next_addr(&mut self) -> u64 {
        let line = if self.rng.chance(self.streaming_frac) {
            // Sequential walk over the whole footprint: minimal temporal
            // reuse, maximal cache pollution.
            self.stream_pos = (self.stream_pos + 1) % self.footprint_lines;
            self.stream_pos
        } else if self.rng.chance(self.stack_frac) {
            // Innermost tier: stack frames / loop-resident data (L1-sized).
            self.rng.next_range(self.stack_lines)
        } else if self.rng.chance(self.hot_frac) {
            self.rng.next_range(self.hot_lines)
        } else {
            self.rng.next_range(self.footprint_lines)
        };
        self.thread_tag | (line * self.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::InsnKind;
    use std::collections::HashMap;

    fn count_kinds(gen: &mut TraceGen, n: usize) -> HashMap<InsnKind, usize> {
        let mut counts = HashMap::new();
        for _ in 0..n {
            *counts.entry(gen.next_insn().kind).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn mix_matches_profile_statistically() {
        let p = BenchmarkProfile::balanced("mix", 42);
        let mut gen = TraceGen::new(&p, 0, 64);
        let n = 100_000;
        let counts = count_kinds(&mut gen, n);
        let frac = |k: InsnKind| *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
        assert!((frac(InsnKind::Load) - p.load_frac).abs() < 0.01);
        assert!((frac(InsnKind::Store) - p.store_frac).abs() < 0.01);
        assert!((frac(InsnKind::Branch) - p.branch_frac).abs() < 0.01);
        assert!((frac(InsnKind::LongOp) - p.long_op_frac).abs() < 0.01);
    }

    #[test]
    fn streams_are_deterministic_per_slot() {
        let p = BenchmarkProfile::balanced("det", 7);
        let mut a = TraceGen::new(&p, 2, 64);
        let mut b = TraceGen::new(&p, 2, 64);
        for _ in 0..1000 {
            assert_eq!(a.next_insn(), b.next_insn());
        }
    }

    #[test]
    fn different_slots_decorrelate_and_separate_address_spaces() {
        let p = BenchmarkProfile::balanced("slots", 7);
        let mut a = TraceGen::new(&p, 0, 64);
        let mut b = TraceGen::new(&p, 1, 64);
        let mut identical = 0;
        for _ in 0..1000 {
            let (ia, ib) = (a.next_insn(), b.next_insn());
            if ia == ib {
                identical += 1;
            }
            if ia.is_memory() && ib.is_memory() {
                assert_ne!(
                    ia.addr >> THREAD_SPACE_SHIFT,
                    ib.addr >> THREAD_SPACE_SHIFT,
                    "address spaces must be disjoint"
                );
            }
        }
        assert!(identical < 900, "streams should differ between slots");
    }

    #[test]
    fn addresses_are_line_aligned_and_in_footprint() {
        let p = BenchmarkProfile::balanced("addr", 3);
        let mut gen = TraceGen::new(&p, 1, 64);
        for _ in 0..10_000 {
            let i = gen.next_insn();
            if i.is_memory() {
                assert_eq!(i.addr % 64, 0, "addresses must be line aligned");
                let line = (i.addr & ((1 << THREAD_SPACE_SHIFT) - 1)) / 64;
                assert!(line < p.footprint_lines);
            }
        }
    }

    #[test]
    fn hot_set_receives_most_accesses() {
        let mut p = BenchmarkProfile::balanced("hot", 11);
        p.streaming_frac = 0.0;
        let mut gen = TraceGen::new(&p, 0, 64);
        let (mut stack, mut hot, mut total) = (0u64, 0u64, 0u64);
        for _ in 0..50_000 {
            let i = gen.next_insn();
            if i.is_memory() {
                total += 1;
                let line = (i.addr & ((1 << THREAD_SPACE_SHIFT) - 1)) / 64;
                if line < p.stack_lines {
                    stack += 1;
                }
                if line < p.hot_lines {
                    hot += 1;
                }
            }
        }
        // The stack tier alone draws stack_frac of accesses; the hot set
        // (a superset of the stack) draws at least stack + (1-stack)*hot.
        assert!(stack as f64 / total as f64 > p.stack_frac - 0.05);
        let hot_expected = p.stack_frac + (1.0 - p.stack_frac) * p.hot_frac;
        assert!(hot as f64 / total as f64 > hot_expected - 0.05);
    }

    #[test]
    fn branches_mispredict_at_profile_rate() {
        let mut p = BenchmarkProfile::balanced("bp", 5);
        p.mispredict_rate = 0.10;
        let mut gen = TraceGen::new(&p, 0, 64);
        let (mut branches, mut missed) = (0u64, 0u64);
        for _ in 0..200_000 {
            let i = gen.next_insn();
            if i.kind == InsnKind::Branch {
                branches += 1;
                if i.mispredicted {
                    missed += 1;
                }
            }
        }
        let rate = missed as f64 / branches as f64;
        assert!((rate - 0.10).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn invalid_profile_panics() {
        let mut p = BenchmarkProfile::balanced("bad", 1);
        p.hot_lines = 0;
        let _ = TraceGen::new(&p, 0, 64);
    }
}
