//! Set-associative LRU caches.

use crate::config::CacheGeometry;

/// Per-cache access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Only tags are stored (the simulator never needs data). Fills are
/// inclusive: the caller looks up each level in order and calls
/// [`Cache::access`] on every level, which both probes and updates LRU /
/// allocates on miss.
///
/// # Examples
///
/// ```
/// use simproc::{cache::Cache, config::CacheGeometry};
///
/// let geo = CacheGeometry { size_bytes: 4096, ways: 4, line_bytes: 64, latency: 3 };
/// let mut cache = Cache::new(&geo);
/// assert!(!cache.access(0));  // cold miss
/// assert!(cache.access(0));   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets x ways` tag store; `u64::MAX` marks an empty way.
    /// Within a set, index 0 is the MRU position.
    tags: Vec<u64>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    latency: u64,
    stats: CacheStats,
}

const EMPTY: u64 = u64::MAX;

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheGeometry::validate`].
    pub fn new(geometry: &CacheGeometry) -> Self {
        geometry
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache geometry: {e}"));
        let sets = geometry.sets() as usize;
        Cache {
            tags: vec![EMPTY; sets * geometry.ways as usize],
            ways: geometry.ways as usize,
            set_mask: geometry.sets() - 1,
            line_shift: geometry.line_bytes.trailing_zeros(),
            latency: geometry.latency,
            stats: CacheStats::default(),
        }
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. at the end of warm-up) without disturbing
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Probes `addr`; on hit, promotes the line to MRU; on miss, allocates
    /// it (evicting the LRU way). Returns whether the access hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let base = set * self.ways;
        let set_tags = &mut self.tags[base..base + self.ways];
        self.stats.accesses += 1;
        if let Some(pos) = set_tags.iter().position(|&t| t == tag) {
            // MRU promotion: rotate [0..=pos] right by one.
            set_tags[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Evict LRU (last way), insert at MRU.
            set_tags.rotate_right(1);
            set_tags[0] = tag;
            false
        }
    }

    /// Probes without updating LRU state or statistics (for tests/inspection).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32, sets_times_ways_lines: u64) -> Cache {
        let geo = CacheGeometry {
            size_bytes: sets_times_ways_lines * 64,
            ways,
            line_bytes: 64,
            latency: 3,
        };
        Cache::new(&geo)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(4, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = small_cache(4, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1004)); // same 64B line
        assert!(c.access(0x103F));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set of 2 ways: addresses mapping to set 0 with distinct tags.
        let geo = CacheGeometry {
            size_bytes: 2 * 64,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        };
        let mut c = Cache::new(&geo);
        let a = 0u64;
        let b = 64; // sets = 1 so every line maps to set 0
        let d = 128;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // promote a to MRU; b is now LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b must have been evicted");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small_cache(1, 64); // direct mapped, 64 sets
        for set in 0..64u64 {
            assert!(!c.access(set * 64));
        }
        for set in 0..64u64 {
            assert!(c.access(set * 64), "set {set} must still be resident");
        }
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = small_cache(1, 64);
        let a = 0u64;
        let b = 64 * 64; // same set (64 sets), different tag
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(!c.access(a), "direct-mapped conflict must evict");
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = small_cache(8, 512);
        // Touch 16 lines repeatedly: all fit, hit rate approaches 1.
        for round in 0..100 {
            for line in 0..16u64 {
                let hit = c.access(line * 64);
                if round > 0 {
                    assert!(hit);
                }
            }
        }
        assert!(c.stats().hit_rate() > 0.98);
    }

    #[test]
    fn capacity_thrash_produces_misses() {
        let mut c = small_cache(8, 512); // 512 lines
                                         // Cyclic walk over 1024 lines with LRU: everything misses after warmup.
        let mut last_round_hits = 0;
        for round in 0..3 {
            c.reset_stats();
            for line in 0..1024u64 {
                c.access(line * 64);
            }
            if round == 2 {
                last_round_hits = c.stats().hits;
            }
        }
        assert_eq!(last_round_hits, 0, "cyclic overflow thrash must miss");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache(4, 64);
        c.access(0x40);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(0x40));
        assert!(c.access(0x40));
    }

    #[test]
    fn contains_does_not_mutate() {
        let mut c = small_cache(2, 8);
        c.access(0);
        let before = c.stats();
        assert!(c.contains(0));
        assert!(!c.contains(0x4000));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn hit_rate_zero_when_unused() {
        let c = small_cache(2, 8);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
