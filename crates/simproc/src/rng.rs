//! Deterministic pseudo-random number generation for simulations.
//!
//! The simulator must produce bit-identical results across runs and across
//! dependency upgrades (results feed directly into the reproduced tables),
//! so it uses a self-contained SplitMix64 generator rather than an external
//! crate whose stream might change between versions.

/// SplitMix64 pseudo-random generator.
///
/// Passes BigCrush when used as a 64-bit generator and is more than adequate
/// for driving synthetic instruction mixes. Construction from any seed
/// (including 0) is valid.
///
/// # Examples
///
/// ```
/// use simproc::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream for a sub-entity (e.g. a thread slot).
    ///
    /// Mixing with a large odd constant ensures that `derive(0)` differs
    /// from the parent stream.
    pub fn derive(&self, stream: u64) -> Self {
        let mut child = SplitMix64::new(
            self.state
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1))),
        );
        // Burn one output so children starting near each other decorrelate.
        child.next_u64();
        child
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift: negligible bias for the bounds used here (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_produces_distinct_streams() {
        let parent = SplitMix64::new(7);
        let mut c0 = parent.derive(0);
        let mut c1 = parent.derive(1);
        let mut p = parent.clone();
        let x = p.next_u64();
        assert_ne!(c0.next_u64(), c1.next_u64());
        let mut c0b = parent.derive(0);
        assert_ne!(c0b.next_u64(), x);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = SplitMix64::new(5);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.next_range(bound) < bound);
            }
        }
    }

    #[test]
    fn range_hits_all_small_values() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.next_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_range(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
