//! Public simulation entry point.

use std::error::Error;
use std::fmt;

use crate::config::MachineConfig;
use crate::engine::{Chip, SimResult};
use crate::profile::BenchmarkProfile;

/// Error constructing or driving a [`Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// Wrong number of jobs passed to a simulation call.
    WrongJobCount {
        /// Hardware contexts available.
        contexts: usize,
        /// Jobs supplied.
        supplied: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
            MachineError::WrongJobCount { contexts, supplied } => write!(
                f,
                "machine has {contexts} contexts but {supplied} jobs were supplied"
            ),
        }
    }
}

impl Error for MachineError {}

/// A simulated processor that can run coschedules of benchmark profiles.
///
/// A `Machine` is immutable and cheap to share across threads; every
/// [`Machine::simulate`] call builds fresh chip state, so concurrent
/// simulations of different coschedules are safe and independent.
///
/// # Examples
///
/// ```
/// use simproc::{Machine, MachineConfig, profile::BenchmarkProfile};
///
/// # fn main() -> Result<(), simproc::MachineError> {
/// let machine = Machine::new(MachineConfig::smt4().with_windows(2_000, 8_000))?;
/// let job = BenchmarkProfile::balanced("demo", 3);
/// let result = machine.simulate(&[&job, &job])?;
/// assert_eq!(result.ipc.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidConfig`] with a description of the
    /// first violated invariant.
    pub fn new(config: MachineConfig) -> Result<Self, MachineError> {
        config.validate().map_err(MachineError::InvalidConfig)?;
        Ok(Machine { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulates a coschedule: `jobs[i]` is pinned to hardware context `i`.
    ///
    /// Between 1 and `contexts` jobs may be supplied; unoccupied contexts
    /// stay idle (used for solo reference runs).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::WrongJobCount`] if `jobs` is empty or larger
    /// than the number of hardware contexts.
    pub fn simulate(&self, jobs: &[&BenchmarkProfile]) -> Result<SimResult, MachineError> {
        let contexts = self.config.contexts();
        if jobs.is_empty() || jobs.len() > contexts {
            return Err(MachineError::WrongJobCount {
                contexts,
                supplied: jobs.len(),
            });
        }
        Ok(Chip::new(&self.config, jobs).run())
    }

    /// Simulates `job` running alone on the machine (the reference run used
    /// to define weighted instructions, Section III-B of the paper).
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from [`Machine::simulate`].
    pub fn simulate_solo(&self, job: &BenchmarkProfile) -> Result<SimResult, MachineError> {
        self.simulate(&[job])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MachineConfig::smt4();
        cfg.core.rob_size = 0;
        assert!(matches!(
            Machine::new(cfg),
            Err(MachineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn job_count_is_validated() {
        let m = Machine::new(MachineConfig::smt4().with_windows(100, 400)).unwrap();
        let p = BenchmarkProfile::balanced("x", 1);
        assert!(matches!(
            m.simulate(&[]),
            Err(MachineError::WrongJobCount { .. })
        ));
        assert!(matches!(
            m.simulate(&[&p, &p, &p, &p, &p]),
            Err(MachineError::WrongJobCount {
                contexts: 4,
                supplied: 5
            })
        ));
    }

    #[test]
    fn solo_run_occupies_one_context() {
        let m = Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000)).unwrap();
        let p = BenchmarkProfile::balanced("solo", 2);
        let res = m.simulate_solo(&p).unwrap();
        assert_eq!(res.ipc.len(), 1);
        assert!(res.ipc[0] > 0.0);
    }

    #[test]
    fn machine_is_reusable_and_deterministic() {
        let m = Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000)).unwrap();
        let p = BenchmarkProfile::balanced("rep", 5);
        let a = m.simulate(&[&p, &p]).unwrap();
        let b = m.simulate(&[&p, &p]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = MachineError::WrongJobCount {
            contexts: 4,
            supplied: 7,
        };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('7'));
    }
}
