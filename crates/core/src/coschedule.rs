//! Coschedules: multisets of job types running simultaneously.

use std::fmt;

/// A coschedule — the multiset of job types occupying the machine's
/// hardware contexts at one instant.
///
/// Internally a count vector: `counts()[b]` is how many jobs of type `b`
/// run. For a 4-context machine and workload `ABCD`, the 35 possible
/// coschedules range from `AAAA` to `DDDD` (combinations with repetition,
/// Section V-A of the paper).
///
/// # Examples
///
/// ```
/// use symbiosis::Coschedule;
///
/// let s = Coschedule::from_slots(&[0, 0, 2, 1], 4);
/// assert_eq!(s.counts(), &[2, 1, 1, 0]);
/// assert_eq!(s.size(), 4);
/// assert_eq!(s.heterogeneity(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coschedule {
    counts: Vec<u32>,
}

impl Coschedule {
    /// Builds a coschedule from per-type counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or sums to zero.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        assert!(!counts.is_empty(), "coschedule needs at least one type");
        assert!(
            counts.iter().any(|&c| c > 0),
            "coschedule must contain at least one job"
        );
        Coschedule { counts }
    }

    /// Builds a coschedule from the job type in each hardware context.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or references a type `>= num_types`.
    pub fn from_slots(slots: &[usize], num_types: usize) -> Self {
        assert!(
            !slots.is_empty(),
            "coschedule must contain at least one job"
        );
        let mut counts = vec![0u32; num_types];
        for &t in slots {
            assert!(
                t < num_types,
                "type {t} out of range (num_types {num_types})"
            );
            counts[t] += 1;
        }
        Coschedule { counts }
    }

    /// Per-type job counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of job types this coschedule is defined over.
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Total number of jobs (must equal the machine's context count).
    pub fn size(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Number of *distinct* job types present (Table II's "coschedule
    /// heterogeneity").
    pub fn heterogeneity(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of jobs of type `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_types`.
    pub fn count(&self, b: usize) -> u32 {
        self.counts[b]
    }

    /// Expands to a sorted slot list (`[0, 0, 2, 1]` -> `[0, 0, 1, 2]`).
    pub fn slots(&self) -> Vec<usize> {
        let mut slots = Vec::with_capacity(self.size() as usize);
        for (t, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                slots.push(t);
            }
        }
        slots
    }

    /// Returns the coschedule obtained by replacing one job of type `from`
    /// with one of type `to`, or `None` if no `from` job is present.
    pub fn replace(&self, from: usize, to: usize) -> Option<Coschedule> {
        if self.counts.get(from).copied().unwrap_or(0) == 0 || to >= self.num_types() {
            return None;
        }
        let mut counts = self.counts.clone();
        counts[from] -= 1;
        counts[to] += 1;
        Some(Coschedule { counts })
    }
}

impl fmt::Display for Coschedule {
    /// Displays as letters, e.g. `AABD` for counts `[2, 1, 0, 1]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                let ch = if t < 26 {
                    (b'A' + t as u8) as char
                } else {
                    '?'
                };
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// Enumerates every coschedule of `k` jobs over `num_types` job types
/// (combinations with repetition), in lexicographic count order.
///
/// # Examples
///
/// ```
/// // 4 types on 4 contexts: C(4+4-1, 4) = 35 coschedules (Section V-A).
/// let all = symbiosis::enumerate_coschedules(4, 4);
/// assert_eq!(all.len(), 35);
/// ```
///
/// # Panics
///
/// Panics if `num_types == 0` or `k == 0`.
pub fn enumerate_coschedules(num_types: usize, k: usize) -> Vec<Coschedule> {
    CoscheduleIter::new(num_types, k).collect()
}

/// Streaming coschedule enumeration: yields the same sequence as
/// [`enumerate_coschedules`] (count vectors in descending lexicographic
/// order) one coschedule at a time, without materialising the full list.
///
/// At N = 12 job types on K = 8 contexts the full enumeration is
/// `C(19, 8)` = 75 582 coschedules; the big-machine solvers and the
/// `workloads` table sweep iterate that space, and this iterator lets them
/// do so in constant memory (one count vector of successor state).
///
/// # Examples
///
/// ```
/// use symbiosis::{enumerate_coschedules, CoscheduleIter};
///
/// let streamed: Vec<_> = CoscheduleIter::new(4, 4).collect();
/// assert_eq!(streamed, enumerate_coschedules(4, 4));
/// assert_eq!(CoscheduleIter::new(12, 8).count(), 75_582);
/// ```
#[derive(Debug, Clone)]
pub struct CoscheduleIter {
    /// Successor state: the next count vector to yield, or `None` when the
    /// sequence is exhausted.
    counts: Option<Vec<u32>>,
}

impl CoscheduleIter {
    /// Starts the enumeration of `k`-job coschedules over `num_types` types.
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `k == 0`.
    pub fn new(num_types: usize, k: usize) -> Self {
        assert!(num_types > 0, "need at least one job type");
        assert!(k > 0, "need at least one context");
        let mut counts = vec![0u32; num_types];
        counts[0] = k as u32;
        CoscheduleIter {
            counts: Some(counts),
        }
    }

    /// Total number of coschedules in the sequence: `C(n + k - 1, k)`
    /// multisets of size `k` over `n` types (saturating at `usize::MAX`).
    pub fn count_total(num_types: usize, k: usize) -> usize {
        // C(n + k - 1, k) computed incrementally to postpone overflow.
        let mut total: u128 = 1;
        for i in 0..k {
            total = total * (num_types as u128 + i as u128) / (i as u128 + 1);
            if total > usize::MAX as u128 {
                return usize::MAX;
            }
        }
        total as usize
    }

    /// Advances `counts` to its lexicographic successor (descending count
    /// order); returns `false` when the sequence is exhausted.
    fn advance(counts: &mut [u32]) -> bool {
        let n = counts.len();
        // Find the rightmost position before the last with a job to move.
        let Some(i) = (0..n - 1).rev().find(|&i| counts[i] > 0) else {
            return false; // everything sits in the last bucket: done
        };
        counts[i] -= 1;
        // The moved job plus everything right of i re-packs into i+1.
        let tail: u32 = 1 + counts[i + 1..].iter().sum::<u32>();
        for c in &mut counts[i + 1..] {
            *c = 0;
        }
        counts[i + 1] = tail;
        true
    }
}

impl Iterator for CoscheduleIter {
    type Item = Coschedule;

    fn next(&mut self) -> Option<Coschedule> {
        let counts = self.counts.as_mut()?;
        let item = Coschedule::from_counts(counts.clone());
        if !Self::advance(counts) {
            self.counts = None;
        }
        Some(item)
    }
}

/// Enumerates every workload of `n` distinct job types chosen from
/// `pool_size` candidates (combinations without repetition), as sorted
/// index vectors.
///
/// # Examples
///
/// ```
/// // 4 job types out of 12 benchmarks: C(12, 4) = 495 workloads.
/// let w = symbiosis::enumerate_workloads(12, 4);
/// assert_eq!(w.len(), 495);
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `n > pool_size`.
pub fn enumerate_workloads(pool_size: usize, n: usize) -> Vec<Vec<usize>> {
    assert!(n > 0, "workloads must contain at least one type");
    assert!(n <= pool_size, "cannot choose {n} from {pool_size}");
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(n);
    choose(&mut result, &mut current, 0, pool_size, n);
    result
}

fn choose(
    out: &mut Vec<Vec<usize>>,
    current: &mut Vec<usize>,
    start: usize,
    pool: usize,
    n: usize,
) {
    if current.len() == n {
        out.push(current.clone());
        return;
    }
    let needed = n - current.len();
    for i in start..=pool - needed {
        current.push(i);
        choose(out, current, i + 1, pool, n);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counts_round_trip_slots() {
        let s = Coschedule::from_slots(&[3, 1, 1, 0], 4);
        assert_eq!(s.counts(), &[1, 2, 0, 1]);
        assert_eq!(s.slots(), vec![0, 1, 1, 3]);
        assert_eq!(Coschedule::from_slots(&s.slots(), 4), s);
    }

    #[test]
    fn heterogeneity_counts_distinct_types() {
        assert_eq!(Coschedule::from_slots(&[0, 0, 0, 0], 4).heterogeneity(), 1);
        assert_eq!(Coschedule::from_slots(&[0, 1, 0, 1], 4).heterogeneity(), 2);
        assert_eq!(Coschedule::from_slots(&[0, 1, 2, 3], 4).heterogeneity(), 4);
    }

    #[test]
    fn enumeration_counts_match_combinatorics() {
        // C(n+k-1, k) with repetition.
        assert_eq!(enumerate_coschedules(4, 4).len(), 35);
        assert_eq!(enumerate_coschedules(12, 4).len(), 1365);
        assert_eq!(enumerate_coschedules(8, 4).len(), 330);
        assert_eq!(enumerate_coschedules(1, 4).len(), 1);
        assert_eq!(enumerate_coschedules(4, 1).len(), 4);
    }

    #[test]
    fn enumeration_is_unique_and_sized() {
        let all = enumerate_coschedules(5, 3);
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for s in &all {
            assert_eq!(s.size(), 3);
            assert_eq!(s.num_types(), 5);
        }
    }

    #[test]
    fn stream_matches_materialised_enumeration_exactly() {
        for (n, k) in [(1, 1), (1, 5), (2, 3), (3, 2), (4, 4), (5, 3), (12, 4)] {
            let streamed: Vec<_> = CoscheduleIter::new(n, k).collect();
            assert_eq!(streamed, enumerate_coschedules(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn stream_count_total_matches_combinatorics() {
        assert_eq!(CoscheduleIter::count_total(4, 4), 35);
        assert_eq!(CoscheduleIter::count_total(12, 4), 1365);
        assert_eq!(CoscheduleIter::count_total(12, 8), 75_582);
        assert_eq!(CoscheduleIter::count_total(1, 9), 1);
        assert_eq!(
            CoscheduleIter::count_total(200, 100),
            usize::MAX,
            "saturates"
        );
        for (n, k) in [(2, 5), (6, 3), (8, 4)] {
            assert_eq!(
                CoscheduleIter::count_total(n, k),
                CoscheduleIter::new(n, k).count(),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn workload_enumeration_matches_binomials() {
        assert_eq!(enumerate_workloads(12, 4).len(), 495);
        assert_eq!(enumerate_workloads(12, 8).len(), 495);
        assert_eq!(enumerate_workloads(5, 1).len(), 5);
        assert_eq!(enumerate_workloads(4, 4).len(), 1);
    }

    #[test]
    fn workloads_are_sorted_and_distinct() {
        for w in enumerate_workloads(6, 3) {
            assert!(w.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn replace_moves_one_job() {
        let s = Coschedule::from_counts(vec![2, 1, 1, 0]);
        let t = s.replace(0, 3).unwrap();
        assert_eq!(t.counts(), &[1, 1, 1, 1]);
        assert!(s.replace(3, 0).is_none(), "no type-3 job to replace");
        assert!(s.replace(0, 9).is_none(), "target type out of range");
    }

    #[test]
    fn display_uses_letters() {
        let s = Coschedule::from_counts(vec![2, 0, 1, 1]);
        assert_eq!(s.to_string(), "AACD");
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_coschedule_panics() {
        let _ = Coschedule::from_counts(vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_type_panics() {
        let _ = Coschedule::from_slots(&[0, 5], 4);
    }
}
