//! Coschedules: multisets of job types running simultaneously.

use std::fmt;

/// A coschedule — the multiset of job types occupying the machine's
/// hardware contexts at one instant.
///
/// Internally a count vector: `counts()[b]` is how many jobs of type `b`
/// run. For a 4-context machine and workload `ABCD`, the 35 possible
/// coschedules range from `AAAA` to `DDDD` (combinations with repetition,
/// Section V-A of the paper).
///
/// # Examples
///
/// ```
/// use symbiosis::Coschedule;
///
/// let s = Coschedule::from_slots(&[0, 0, 2, 1], 4);
/// assert_eq!(s.counts(), &[2, 1, 1, 0]);
/// assert_eq!(s.size(), 4);
/// assert_eq!(s.heterogeneity(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coschedule {
    counts: Vec<u32>,
}

impl Coschedule {
    /// Builds a coschedule from per-type counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or sums to zero.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        assert!(!counts.is_empty(), "coschedule needs at least one type");
        assert!(
            counts.iter().any(|&c| c > 0),
            "coschedule must contain at least one job"
        );
        Coschedule { counts }
    }

    /// Builds a coschedule from the job type in each hardware context.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or references a type `>= num_types`.
    pub fn from_slots(slots: &[usize], num_types: usize) -> Self {
        assert!(
            !slots.is_empty(),
            "coschedule must contain at least one job"
        );
        let mut counts = vec![0u32; num_types];
        for &t in slots {
            assert!(
                t < num_types,
                "type {t} out of range (num_types {num_types})"
            );
            counts[t] += 1;
        }
        Coschedule { counts }
    }

    /// Per-type job counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of job types this coschedule is defined over.
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Total number of jobs (must equal the machine's context count).
    pub fn size(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Number of *distinct* job types present (Table II's "coschedule
    /// heterogeneity").
    pub fn heterogeneity(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of jobs of type `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_types`.
    pub fn count(&self, b: usize) -> u32 {
        self.counts[b]
    }

    /// Expands to a sorted slot list (`[0, 0, 2, 1]` -> `[0, 0, 1, 2]`).
    pub fn slots(&self) -> Vec<usize> {
        let mut slots = Vec::with_capacity(self.size() as usize);
        for (t, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                slots.push(t);
            }
        }
        slots
    }

    /// Returns the coschedule obtained by replacing one job of type `from`
    /// with one of type `to`, or `None` if no `from` job is present.
    pub fn replace(&self, from: usize, to: usize) -> Option<Coschedule> {
        if self.counts.get(from).copied().unwrap_or(0) == 0 || to >= self.num_types() {
            return None;
        }
        let mut counts = self.counts.clone();
        counts[from] -= 1;
        counts[to] += 1;
        Some(Coschedule { counts })
    }
}

impl fmt::Display for Coschedule {
    /// Displays as letters, e.g. `AABD` for counts `[2, 1, 0, 1]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                let ch = if t < 26 {
                    (b'A' + t as u8) as char
                } else {
                    '?'
                };
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// Enumerates every coschedule of `k` jobs over `num_types` job types
/// (combinations with repetition), in lexicographic count order.
///
/// # Examples
///
/// ```
/// // 4 types on 4 contexts: C(4+4-1, 4) = 35 coschedules (Section V-A).
/// let all = symbiosis::enumerate_coschedules(4, 4);
/// assert_eq!(all.len(), 35);
/// ```
///
/// # Panics
///
/// Panics if `num_types == 0` or `k == 0`.
pub fn enumerate_coschedules(num_types: usize, k: usize) -> Vec<Coschedule> {
    CoscheduleIter::new(num_types, k).collect()
}

/// Streaming coschedule enumeration: yields the same sequence as
/// [`enumerate_coschedules`] (count vectors in descending lexicographic
/// order) one coschedule at a time, without materialising the full list.
///
/// At N = 12 job types on K = 8 contexts the full enumeration is
/// `C(19, 8)` = 75 582 coschedules; the big-machine solvers and the
/// `workloads` table sweep iterate that space, and this iterator lets them
/// do so in constant memory (one count vector of successor state).
///
/// # Examples
///
/// ```
/// use symbiosis::{enumerate_coschedules, CoscheduleIter};
///
/// let streamed: Vec<_> = CoscheduleIter::new(4, 4).collect();
/// assert_eq!(streamed, enumerate_coschedules(4, 4));
/// assert_eq!(CoscheduleIter::new(12, 8).count(), 75_582);
/// ```
#[derive(Debug, Clone)]
pub struct CoscheduleIter {
    /// Successor state: the next count vector to yield, or `None` when the
    /// sequence is exhausted.
    counts: Option<Vec<u32>>,
}

impl CoscheduleIter {
    /// Starts the enumeration of `k`-job coschedules over `num_types` types.
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `k == 0`.
    pub fn new(num_types: usize, k: usize) -> Self {
        assert!(num_types > 0, "need at least one job type");
        assert!(k > 0, "need at least one context");
        let mut counts = vec![0u32; num_types];
        counts[0] = k as u32;
        CoscheduleIter {
            counts: Some(counts),
        }
    }

    /// Total number of coschedules in the sequence: `C(n + k - 1, k)`
    /// multisets of size `k` over `n` types (saturating at `usize::MAX`).
    pub fn count_total(num_types: usize, k: usize) -> usize {
        // C(n + k - 1, k) computed incrementally to postpone overflow.
        let mut total: u128 = 1;
        for i in 0..k {
            total = total * (num_types as u128 + i as u128) / (i as u128 + 1);
            if total > usize::MAX as u128 {
                return usize::MAX;
            }
        }
        total as usize
    }

    /// Advances `counts` to its lexicographic successor (descending count
    /// order); returns `false` when the sequence is exhausted.
    fn advance(counts: &mut [u32]) -> bool {
        let n = counts.len();
        // Find the rightmost position before the last with a job to move.
        let Some(i) = (0..n - 1).rev().find(|&i| counts[i] > 0) else {
            return false; // everything sits in the last bucket: done
        };
        counts[i] -= 1;
        // The moved job plus everything right of i re-packs into i+1.
        let tail: u32 = 1 + counts[i + 1..].iter().sum::<u32>();
        for c in &mut counts[i + 1..] {
            *c = 0;
        }
        counts[i + 1] = tail;
        true
    }
}

impl Iterator for CoscheduleIter {
    type Item = Coschedule;

    fn next(&mut self) -> Option<Coschedule> {
        let counts = self.counts.as_mut()?;
        let item = Coschedule::from_counts(counts.clone());
        if !Self::advance(counts) {
            self.counts = None;
        }
        Some(item)
    }
}

/// Perfect index into the [`CoscheduleIter`] enumeration: maps a count
/// vector to its position in the stream with O(`num_types`) arithmetic and
/// zero allocation.
///
/// The iterator yields count vectors in *descending* lexicographic order,
/// so the rank of `c` is the number of count vectors that precede it —
/// i.e. compare lexicographically *greater*. Fixing a prefix `c[..i]` and
/// picking `d_i > c_i` leaves `r_i - d_i` jobs to distribute over the
/// remaining `n - i - 1` types (`r_i` is the budget left before type `i`);
/// summing the multiset counts over all admissible `d_i` telescopes (the
/// hockey-stick identity) to one binomial per position:
///
/// ```text
/// rank(c) = sum_i C((n - i - 1) + (r_i - c_i - 1), r_i - c_i - 1)
/// ```
///
/// The binomials come from a Pascal table precomputed once per `(n, k)`,
/// so a rank probe is a short loop of adds — the flat-layout replacement
/// for hashing an allocated `Vec<u32>` key on every rate lookup.
///
/// # Examples
///
/// ```
/// use symbiosis::{CoscheduleIter, CoscheduleRank};
///
/// let rank = CoscheduleRank::new(4, 4);
/// for (i, s) in CoscheduleIter::new(4, 4).enumerate() {
///     assert_eq!(rank.rank(s.counts()), Some(i));
/// }
/// assert_eq!(rank.rank(&[0, 0, 0, 3]), None, "wrong total");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoscheduleRank {
    num_types: usize,
    k: u32,
    /// `binom[a * (k + 1) + b]` = `C(a, b)` (saturating), for
    /// `a <= n + k - 1`, `b <= k`.
    binom: Vec<usize>,
    stride: usize,
}

impl CoscheduleRank {
    /// Builds the rank table for `k`-job coschedules over `num_types`
    /// types.
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `k == 0`.
    pub fn new(num_types: usize, k: usize) -> Self {
        assert!(num_types > 0, "need at least one job type");
        assert!(k > 0, "need at least one context");
        let rows = num_types + k; // a ranges over 0..=n + k - 1
        let stride = k + 1;
        let mut binom = vec![0usize; rows * stride];
        for a in 0..rows {
            binom[a * stride] = 1;
            for b in 1..=k.min(a) {
                let left = binom[(a - 1) * stride + b - 1];
                let up = if b < a {
                    binom[(a - 1) * stride + b]
                } else {
                    0
                };
                binom[a * stride + b] = left.saturating_add(up);
            }
        }
        CoscheduleRank {
            num_types,
            k: k as u32,
            binom,
            stride,
        }
    }

    /// Number of job types.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Jobs per coschedule.
    pub fn contexts(&self) -> usize {
        self.k as usize
    }

    /// Total coschedules in the enumeration (`C(n + k - 1, k)`).
    pub fn total(&self) -> usize {
        self.binom(self.num_types + self.contexts() - 1, self.contexts())
    }

    fn binom(&self, a: usize, b: usize) -> usize {
        self.binom[a * self.stride + b]
    }

    /// Rank of the count vector produced by `count_of(ty)` for each type,
    /// or `None` if the counts do not sum to `k`. The shared core behind
    /// [`CoscheduleRank::rank`] and the allocation-free sparse probes in
    /// the `workloads` crate.
    pub fn rank_with<F: FnMut(usize) -> u32>(&self, mut count_of: F) -> Option<usize> {
        let n = self.num_types;
        let mut rank = 0usize;
        let mut remaining = self.k;
        for i in 0..n {
            if remaining == 0 {
                // All later counts must be zero; any job left is a mismatch.
                return (i..n).all(|j| count_of(j) == 0).then_some(rank);
            }
            let c = count_of(i);
            if c > remaining {
                return None;
            }
            // Choices d_i in c+1..=remaining, each leaving a free multiset
            // over the n - i - 1 later types: hockey-stick to one binomial.
            if remaining > c {
                let t = (remaining - c - 1) as usize;
                rank += self.binom(n - i - 1 + t, t);
            }
            remaining -= c;
        }
        (remaining == 0).then_some(rank)
    }

    /// Rank of a count vector, or `None` if its length is not `num_types`
    /// or its counts do not sum to `k`.
    pub fn rank(&self, counts: &[u32]) -> Option<usize> {
        if counts.len() != self.num_types {
            return None;
        }
        self.rank_with(|i| counts[i])
    }

    /// Visits `(c, rank)` for every single-job replacement `b -> c`
    /// (`c != b`) of the coschedule `counts`, whose own rank is `base`:
    /// first `c = b+1..n` ascending, then `c = b-1..=0` descending.
    ///
    /// Replacing one type-`b` job by type `c` shifts the suffix-remainder
    /// `d_i` (jobs left after consuming types `0..=i`) by one exactly for
    /// `i` between the endpoints, and each rank term depends only on
    /// `(i, d_i)` — so walking `c` outward from `b` costs one binomial
    /// delta per target: O(n) for all `n - 1` replacements, instead of
    /// O(n) per target. This is what lets the Markov generator enumerate
    /// a state's full neighbor row in the time a single rank probe used
    /// to take.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `counts` has the right length, sums to `k`, has
    /// `counts[b] > 0`, and that `base` is its rank.
    // Both sweeps thread running state (`d`, `acc`) through the index, so
    // an enumerate()-style rewrite would obscure the recurrence.
    #[allow(clippy::needless_range_loop)]
    pub fn replace_ranks<F: FnMut(usize, usize)>(
        &self,
        counts: &[u32],
        base: usize,
        b: usize,
        mut visit: F,
    ) {
        let n = self.num_types;
        debug_assert_eq!(counts.len(), n);
        debug_assert!(counts[b] > 0, "type b must be present");
        debug_assert_eq!(self.rank(counts), Some(base), "base must be counts' rank");
        // Rank term at position i, as a function of the suffix-remainder:
        // `binom(n - i + d - 2, d - 1)` for `d > 0`, else 0 (see
        // `rank_with`: `d` is `remaining - c_i` there).
        let g = |i: usize, d: u32| -> usize {
            if d == 0 {
                0
            } else {
                self.binom(n - i + d as usize - 2, d as usize - 1)
            }
        };
        let d_b: u32 = self.k - counts[..=b].iter().sum::<u32>();
        // Ascending c > b: d_i gains one for b <= i < c, and g grows with
        // d, so the running rank only ever steps up.
        let mut acc = base;
        let mut d = d_b;
        for i in b..n.saturating_sub(1) {
            if i > b {
                d -= counts[i];
            }
            acc += g(i, d + 1) - g(i, d);
            visit(i + 1, acc);
        }
        // Descending c < b: d_i loses one for c <= i < b; every
        // intermediate value is itself a valid target rank, so the
        // subtraction cannot underflow.
        let mut acc = base;
        let mut d = d_b + counts[b];
        for i in (0..b).rev() {
            acc -= g(i, d) - g(i, d - 1);
            visit(i, acc);
            d += counts[i];
        }
    }

    /// Rank of a coschedule given as a *sorted* slot list (`slots[j]` is
    /// the type of job `j`, ascending) — the `workloads` crate's native
    /// combo format. Returns `None` for the wrong length, unsorted input,
    /// or a type out of range.
    pub fn rank_sorted_slots(&self, slots: &[usize]) -> Option<usize> {
        if slots.len() != self.contexts() || slots.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if slots.iter().any(|&t| t >= self.num_types) {
            return None;
        }
        let mut cursor = 0usize;
        self.rank_with(|ty| {
            let start = cursor;
            while cursor < slots.len() && slots[cursor] == ty {
                cursor += 1;
            }
            (cursor - start) as u32
        })
    }
}

/// Enumerates every workload of `n` distinct job types chosen from
/// `pool_size` candidates (combinations without repetition), as sorted
/// index vectors.
///
/// # Examples
///
/// ```
/// // 4 job types out of 12 benchmarks: C(12, 4) = 495 workloads.
/// let w = symbiosis::enumerate_workloads(12, 4);
/// assert_eq!(w.len(), 495);
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `n > pool_size`.
pub fn enumerate_workloads(pool_size: usize, n: usize) -> Vec<Vec<usize>> {
    assert!(n > 0, "workloads must contain at least one type");
    assert!(n <= pool_size, "cannot choose {n} from {pool_size}");
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(n);
    choose(&mut result, &mut current, 0, pool_size, n);
    result
}

fn choose(
    out: &mut Vec<Vec<usize>>,
    current: &mut Vec<usize>,
    start: usize,
    pool: usize,
    n: usize,
) {
    if current.len() == n {
        out.push(current.clone());
        return;
    }
    let needed = n - current.len();
    for i in start..=pool - needed {
        current.push(i);
        choose(out, current, i + 1, pool, n);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn replace_ranks_agree_with_direct_ranks_everywhere() {
        for (n, k) in [(2, 2), (3, 3), (4, 4), (5, 3), (6, 4), (8, 4), (4, 6)] {
            let rank = CoscheduleRank::new(n, k);
            for (base, s) in CoscheduleIter::new(n, k).enumerate() {
                for b in 0..n {
                    if s.count(b) == 0 {
                        continue;
                    }
                    let mut got = vec![None; n];
                    rank.replace_ranks(s.counts(), base, b, |c, r| {
                        assert!(got[c].is_none(), "each target visited once");
                        got[c] = Some(r);
                    });
                    assert!(got[b].is_none(), "b -> b is not a transition");
                    for (c, visited) in got.iter().enumerate() {
                        if c == b {
                            continue;
                        }
                        let target = s.replace(b, c).expect("b present");
                        assert_eq!(
                            *visited,
                            rank.rank(target.counts()),
                            "n={n} k={k} base={base} {b}->{c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn counts_round_trip_slots() {
        let s = Coschedule::from_slots(&[3, 1, 1, 0], 4);
        assert_eq!(s.counts(), &[1, 2, 0, 1]);
        assert_eq!(s.slots(), vec![0, 1, 1, 3]);
        assert_eq!(Coschedule::from_slots(&s.slots(), 4), s);
    }

    #[test]
    fn heterogeneity_counts_distinct_types() {
        assert_eq!(Coschedule::from_slots(&[0, 0, 0, 0], 4).heterogeneity(), 1);
        assert_eq!(Coschedule::from_slots(&[0, 1, 0, 1], 4).heterogeneity(), 2);
        assert_eq!(Coschedule::from_slots(&[0, 1, 2, 3], 4).heterogeneity(), 4);
    }

    #[test]
    fn enumeration_counts_match_combinatorics() {
        // C(n+k-1, k) with repetition.
        assert_eq!(enumerate_coschedules(4, 4).len(), 35);
        assert_eq!(enumerate_coschedules(12, 4).len(), 1365);
        assert_eq!(enumerate_coschedules(8, 4).len(), 330);
        assert_eq!(enumerate_coschedules(1, 4).len(), 1);
        assert_eq!(enumerate_coschedules(4, 1).len(), 4);
    }

    #[test]
    fn enumeration_is_unique_and_sized() {
        let all = enumerate_coschedules(5, 3);
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for s in &all {
            assert_eq!(s.size(), 3);
            assert_eq!(s.num_types(), 5);
        }
    }

    #[test]
    fn stream_matches_materialised_enumeration_exactly() {
        for (n, k) in [(1, 1), (1, 5), (2, 3), (3, 2), (4, 4), (5, 3), (12, 4)] {
            let streamed: Vec<_> = CoscheduleIter::new(n, k).collect();
            assert_eq!(streamed, enumerate_coschedules(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn stream_count_total_matches_combinatorics() {
        assert_eq!(CoscheduleIter::count_total(4, 4), 35);
        assert_eq!(CoscheduleIter::count_total(12, 4), 1365);
        assert_eq!(CoscheduleIter::count_total(12, 8), 75_582);
        assert_eq!(CoscheduleIter::count_total(1, 9), 1);
        assert_eq!(
            CoscheduleIter::count_total(200, 100),
            usize::MAX,
            "saturates"
        );
        for (n, k) in [(2, 5), (6, 3), (8, 4)] {
            assert_eq!(
                CoscheduleIter::count_total(n, k),
                CoscheduleIter::new(n, k).count(),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn workload_enumeration_matches_binomials() {
        assert_eq!(enumerate_workloads(12, 4).len(), 495);
        assert_eq!(enumerate_workloads(12, 8).len(), 495);
        assert_eq!(enumerate_workloads(5, 1).len(), 5);
        assert_eq!(enumerate_workloads(4, 4).len(), 1);
    }

    #[test]
    fn workloads_are_sorted_and_distinct() {
        for w in enumerate_workloads(6, 3) {
            assert!(w.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn rank_matches_enumeration_position_exactly() {
        for (n, k) in [
            (1, 1),
            (1, 5),
            (2, 3),
            (3, 2),
            (4, 4),
            (5, 3),
            (12, 4),
            (6, 8),
        ] {
            let rank = CoscheduleRank::new(n, k);
            assert_eq!(rank.total(), CoscheduleIter::count_total(n, k));
            for (i, s) in CoscheduleIter::new(n, k).enumerate() {
                assert_eq!(rank.rank(s.counts()), Some(i), "n={n} k={k} {s}");
                assert_eq!(
                    rank.rank_sorted_slots(&s.slots()),
                    Some(i),
                    "slots n={n} k={k} {s}"
                );
            }
        }
    }

    #[test]
    fn rank_rejects_malformed_counts() {
        let rank = CoscheduleRank::new(4, 4);
        assert_eq!(rank.rank(&[1, 1, 1]), None, "wrong length");
        assert_eq!(rank.rank(&[1, 1, 1, 0]), None, "wrong total");
        assert_eq!(rank.rank(&[5, 0, 0, 0]), None, "overfull");
        assert_eq!(rank.rank(&[4, 0, 0, 1]), None, "job past an empty budget");
        assert_eq!(rank.rank_sorted_slots(&[0, 1, 2]), None, "short slots");
        assert_eq!(rank.rank_sorted_slots(&[0, 2, 1, 3]), None, "unsorted");
        assert_eq!(rank.rank_sorted_slots(&[0, 1, 2, 9]), None, "out of range");
    }

    #[test]
    fn rank_is_zero_allocation_arithmetic_on_big_spaces() {
        // The K = 10 regime this rank exists for: 352 716 coschedules.
        let rank = CoscheduleRank::new(12, 10);
        assert_eq!(rank.total(), 352_716);
        let mut first = vec![0u32; 12];
        first[0] = 10;
        assert_eq!(rank.rank(&first), Some(0));
        let mut last = vec![0u32; 12];
        last[11] = 10;
        assert_eq!(rank.rank(&last), Some(352_715));
    }

    #[test]
    fn replace_moves_one_job() {
        let s = Coschedule::from_counts(vec![2, 1, 1, 0]);
        let t = s.replace(0, 3).unwrap();
        assert_eq!(t.counts(), &[1, 1, 1, 1]);
        assert!(s.replace(3, 0).is_none(), "no type-3 job to replace");
        assert!(s.replace(0, 9).is_none(), "target type out of range");
    }

    #[test]
    fn display_uses_letters() {
        let s = Coschedule::from_counts(vec![2, 0, 1, 1]);
        assert_eq!(s.to_string(), "AACD");
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_coschedule_panics() {
        let _ = Coschedule::from_counts(vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_type_panics() {
        let _ = Coschedule::from_slots(&[0, 5], 4);
    }
}
