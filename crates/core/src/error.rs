//! Error type shared by the symbiosis analyses.

use std::error::Error;
use std::fmt;

use lp::SolveError;

/// Errors produced by the scheduling analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbiosisError {
    /// A rate table entry is malformed (wrong length, negative, zero for a
    /// present type, non-zero for an absent type).
    InvalidRates(String),
    /// A coschedule index does not belong to the rate table.
    UnknownCoschedule(usize),
    /// The scheduling linear program could not be solved.
    Lp(SolveError),
    /// An experiment parameter is out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for SymbiosisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbiosisError::InvalidRates(msg) => write!(f, "invalid rates: {msg}"),
            SymbiosisError::UnknownCoschedule(i) => {
                write!(f, "coschedule index {i} not in the rate table")
            }
            SymbiosisError::Lp(e) => write!(f, "scheduling LP failed: {e}"),
            SymbiosisError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for SymbiosisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SymbiosisError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SymbiosisError {
    fn from(e: SolveError) -> Self {
        SymbiosisError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SymbiosisError::UnknownCoschedule(7);
        assert!(e.to_string().contains('7'));
        let e = SymbiosisError::InvalidRates("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn lp_errors_convert_and_chain() {
        let e: SymbiosisError = SolveError::Infeasible.into();
        assert!(matches!(e, SymbiosisError::Lp(SolveError::Infeasible)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
