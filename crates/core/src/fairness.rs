//! Section V-D counterfactual: redistributing per-job performance inside
//! the fully heterogeneous coschedule.
//!
//! The paper checks *why* the optimal scheduler cannot exploit the
//! best-throughput (fully heterogeneous) coschedule on the SMT machine: the
//! interference there is unfair, so some types fall behind and force other
//! coschedules to be scheduled. The check: equalise the per-job rates in
//! that coschedule *without changing its instantaneous throughput* and
//! observe that the optimal scheduler now selects it almost exclusively,
//! raising optimal throughput while FCFS/worst barely move.

use crate::coschedule::Coschedule;
use crate::error::SymbiosisError;
use crate::fcfs::{fcfs_throughput, JobSize};
use crate::optimal::{optimal_schedule, Objective};
use crate::rates::WorkloadRates;

/// Before/after numbers for the fairness counterfactual.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessExperiment {
    /// Index of the fully heterogeneous coschedule that was rebalanced.
    pub coschedule: usize,
    /// Optimal throughput with the original (unfair) rates.
    pub optimal_before: f64,
    /// Optimal throughput after equalising rates.
    pub optimal_after: f64,
    /// Time fraction the optimal scheduler gives the rebalanced coschedule,
    /// before and after.
    pub fraction_before: f64,
    /// See [`FairnessExperiment::fraction_before`].
    pub fraction_after: f64,
    /// FCFS throughput before and after (should barely move).
    pub fcfs_before: f64,
    /// See [`FairnessExperiment::fcfs_before`].
    pub fcfs_after: f64,
    /// Worst-scheduler throughput before and after (should barely move).
    pub worst_before: f64,
    /// See [`FairnessExperiment::worst_before`].
    pub worst_after: f64,
}

/// The Section V-D rebalancing rule: locates the fully heterogeneous
/// coschedule (requires `N == K`) and equalises its per-job rates without
/// changing its instantaneous throughput. Returns the coschedule index and
/// the rebalanced table — shared by [`fairness_experiment`] and the
/// session-composed counterfactual in the experiment harness.
///
/// # Errors
///
/// * [`SymbiosisError::InvalidParameter`] if `num_types != contexts`.
/// * [`SymbiosisError::InvalidRates`] is impossible for valid tables but
///   propagated from the rate replacement.
pub fn rebalanced_heterogeneous(
    rates: &WorkloadRates,
) -> Result<(usize, WorkloadRates), SymbiosisError> {
    let n = rates.num_types();
    if n != rates.contexts() {
        return Err(SymbiosisError::InvalidParameter(format!(
            "fairness experiment needs N == K, got N={n}, K={}",
            rates.contexts()
        )));
    }
    let hetero = Coschedule::from_counts(vec![1; n]);
    let si = rates
        .index_of(&hetero)
        .expect("fully heterogeneous coschedule exists when N == K");

    // Equal split of the unchanged instantaneous throughput.
    let it = rates.instantaneous_throughput(si);
    let fair = vec![it / n as f64; n];
    Ok((si, rates.with_rates(si, fair)?))
}

/// Runs the Section V-D counterfactual on a workload whose type count
/// equals the context count (so a fully heterogeneous coschedule exists).
///
/// # Errors
///
/// * [`SymbiosisError::InvalidParameter`] if `num_types != contexts`.
/// * LP/FCFS errors are propagated.
pub fn fairness_experiment(
    rates: &WorkloadRates,
    fcfs_jobs: u64,
    seed: u64,
) -> Result<FairnessExperiment, SymbiosisError> {
    let (si, rebalanced) = rebalanced_heterogeneous(rates)?;

    let best_before = optimal_schedule(rates, Objective::MaxThroughput)?;
    let best_after = optimal_schedule(&rebalanced, Objective::MaxThroughput)?;
    let worst_before = optimal_schedule(rates, Objective::MinThroughput)?;
    let worst_after = optimal_schedule(&rebalanced, Objective::MinThroughput)?;
    let fcfs_before = fcfs_throughput(rates, fcfs_jobs, JobSize::Deterministic, seed)?;
    let fcfs_after = fcfs_throughput(&rebalanced, fcfs_jobs, JobSize::Deterministic, seed)?;

    Ok(FairnessExperiment {
        coschedule: si,
        optimal_before: best_before.throughput,
        optimal_after: best_after.throughput,
        fraction_before: best_before.fractions[si],
        fraction_after: best_after.fractions[si],
        fcfs_before: fcfs_before.throughput,
        fcfs_after: fcfs_after.throughput,
        worst_before: worst_before.throughput,
        worst_after: worst_after.throughput,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SMT-like rates: the heterogeneous coschedule has the best
    /// instantaneous throughput but divides it very unfairly.
    fn unfair_rates() -> WorkloadRates {
        WorkloadRates::build(4, 4, |s| {
            if s.counts() == [1, 1, 1, 1] {
                // it = 2.4 but wildly unfair: fast types race ahead.
                return vec![1.2, 0.7, 0.3, 0.2];
            }
            let het = s.heterogeneity() as f64;
            let per_job = [0.5, 0.45, 0.4, 0.35];
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.7 + 0.1 * het))
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn rebalancing_raises_optimal_throughput() {
        let exp = fairness_experiment(&unfair_rates(), 20_000, 3).unwrap();
        assert!(
            exp.optimal_after > exp.optimal_before + 1e-6,
            "after {} must exceed before {}",
            exp.optimal_after,
            exp.optimal_before
        );
    }

    #[test]
    fn rebalanced_coschedule_dominates_optimal_schedule() {
        let exp = fairness_experiment(&unfair_rates(), 20_000, 3).unwrap();
        assert!(
            exp.fraction_after > 0.9,
            "optimal should now select the fair heterogeneous coschedule, got {}",
            exp.fraction_after
        );
        assert!(exp.fraction_after > exp.fraction_before);
    }

    #[test]
    fn worst_scheduler_is_unaffected() {
        // The worst scheduler avoids the best coschedule either way.
        let exp = fairness_experiment(&unfair_rates(), 20_000, 3).unwrap();
        assert!(
            (exp.worst_after - exp.worst_before).abs() < 1e-6,
            "worst before {} vs after {}",
            exp.worst_before,
            exp.worst_after
        );
    }

    #[test]
    fn fcfs_moves_only_slightly() {
        // FCFS visits the heterogeneous coschedule for a modest fraction of
        // time; equalising per-job rates inside it (same total) changes
        // FCFS throughput only marginally (the paper reports "unchanged").
        let exp = fairness_experiment(&unfair_rates(), 60_000, 3).unwrap();
        let rel = (exp.fcfs_after - exp.fcfs_before).abs() / exp.fcfs_before;
        assert!(rel < 0.05, "fcfs moved {rel}");
    }

    #[test]
    fn requires_square_workload() {
        let rates = WorkloadRates::build(3, 4, |s| {
            s.counts().iter().map(|&c| c as f64 * 0.3).collect()
        })
        .unwrap();
        assert!(matches!(
            fairness_experiment(&rates, 1_000, 0),
            Err(SymbiosisError::InvalidParameter(_))
        ));
    }
}
