//! Table II: which coschedules do the FCFS, optimal and worst schedulers
//! actually select, grouped by coschedule heterogeneity?

use crate::error::SymbiosisError;
use crate::fcfs::{fcfs_throughput, FcfsOutcome, JobSize};
use crate::optimal::{optimal_schedule, Objective};
use crate::rates::WorkloadRates;

/// One row of Table II: statistics for coschedules with a given number of
/// distinct job types.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityRow {
    /// Number of distinct job types in the coschedules of this group.
    pub heterogeneity: usize,
    /// Mean instantaneous throughput of the group's coschedules.
    pub mean_instantaneous_throughput: f64,
    /// Fraction of time FCFS spends in this group.
    pub fcfs_fraction: f64,
    /// Fraction of time the optimal scheduler spends in this group.
    pub optimal_fraction: f64,
    /// Fraction of time the worst scheduler spends in this group.
    pub worst_fraction: f64,
}

/// The full Table II for one workload (or averaged over workloads by the
/// caller).
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityTable {
    /// One row per heterogeneity level `1..=min(N, K)`.
    pub rows: Vec<HeterogeneityRow>,
}

impl HeterogeneityTable {
    /// Row for a given heterogeneity level, if present.
    pub fn row(&self, heterogeneity: usize) -> Option<&HeterogeneityRow> {
        self.rows.iter().find(|r| r.heterogeneity == heterogeneity)
    }
}

/// Computes Table II for one workload.
///
/// `fcfs_jobs`/`seed` parameterise the event-driven FCFS experiment that
/// provides the FCFS column.
///
/// # Errors
///
/// Propagates [`SymbiosisError`] from the LP solves or FCFS experiment.
pub fn heterogeneity_table(
    rates: &WorkloadRates,
    fcfs_jobs: u64,
    seed: u64,
) -> Result<HeterogeneityTable, SymbiosisError> {
    let fcfs = fcfs_throughput(rates, fcfs_jobs, JobSize::Deterministic, seed)?;
    let best = optimal_schedule(rates, Objective::MaxThroughput)?;
    let worst = optimal_schedule(rates, Objective::MinThroughput)?;
    Ok(heterogeneity_table_from_parts(
        rates,
        &fcfs,
        &best.fractions,
        &worst.fractions,
    ))
}

/// Builds Table II from precomputed schedules (lets callers reuse LP
/// solutions across analyses).
pub fn heterogeneity_table_from_parts(
    rates: &WorkloadRates,
    fcfs: &FcfsOutcome,
    optimal_fractions: &[f64],
    worst_fractions: &[f64],
) -> HeterogeneityTable {
    let max_het = rates.num_types().min(rates.contexts());
    let mut rows = Vec::with_capacity(max_het);
    for het in 1..=max_het {
        let members: Vec<usize> = rates
            .coschedules()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.heterogeneity() == het)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mean_it = members
            .iter()
            .map(|&si| rates.instantaneous_throughput(si))
            .sum::<f64>()
            / members.len() as f64;
        let sum = |fractions: &[f64]| members.iter().map(|&si| fractions[si]).sum::<f64>();
        rows.push(HeterogeneityRow {
            heterogeneity: het,
            mean_instantaneous_throughput: mean_it,
            fcfs_fraction: sum(&fcfs.fractions),
            optimal_fraction: sum(optimal_fractions),
            worst_fraction: sum(worst_fractions),
        });
    }
    HeterogeneityTable { rows }
}

/// The probability that a random draw of `k` i.i.d. uniform types from `n`
/// has exactly `het` distinct values — the paper's theoretical FCFS
/// coschedule mix ("2%, 33%, 56%, 9%" for `n = k = 4`).
///
/// Computed by exhaustive enumeration of type tuples (cheap for the small
/// `n`, `k` used here).
///
/// # Panics
///
/// Panics if `n == 0`, `k == 0`, or `k > 12` (12^12 tuples would be
/// excessive; the study never needs more).
pub fn random_draw_heterogeneity_probability(n: usize, k: usize, het: usize) -> f64 {
    assert!(n > 0 && k > 0, "need positive type and context counts");
    assert!(k <= 12, "enumeration limited to k <= 12");
    let mut matching = 0u64;
    let mut total = 0u64;
    let mut tuple = vec![0usize; k];
    loop {
        total += 1;
        let mut seen = vec![false; n];
        for &t in &tuple {
            seen[t] = true;
        }
        if seen.iter().filter(|&&s| s).count() == het {
            matching += 1;
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            tuple[pos] += 1;
            if tuple[pos] < n {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
            if pos == k {
                return matching as f64 / total as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbiotic_rates() -> WorkloadRates {
        WorkloadRates::build(4, 4, |s| {
            let per_job = [0.9, 0.7, 0.5, 0.4];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.5 + 0.125 * het))
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn rows_cover_all_heterogeneity_levels() {
        let t = heterogeneity_table(&symbiotic_rates(), 20_000, 1).unwrap();
        assert_eq!(t.rows.len(), 4);
        for (i, r) in t.rows.iter().enumerate() {
            assert_eq!(r.heterogeneity, i + 1);
        }
    }

    #[test]
    fn fractions_sum_to_one_per_scheduler() {
        let t = heterogeneity_table(&symbiotic_rates(), 20_000, 2).unwrap();
        let fcfs: f64 = t.rows.iter().map(|r| r.fcfs_fraction).sum();
        let opt: f64 = t.rows.iter().map(|r| r.optimal_fraction).sum();
        let worst: f64 = t.rows.iter().map(|r| r.worst_fraction).sum();
        assert!((fcfs - 1.0).abs() < 1e-6, "fcfs {fcfs}");
        assert!((opt - 1.0).abs() < 1e-6, "optimal {opt}");
        assert!((worst - 1.0).abs() < 1e-6, "worst {worst}");
    }

    #[test]
    fn heterogeneous_coschedules_have_higher_throughput_by_construction() {
        let t = heterogeneity_table(&symbiotic_rates(), 10_000, 3).unwrap();
        for pair in t.rows.windows(2) {
            assert!(pair[1].mean_instantaneous_throughput > pair[0].mean_instantaneous_throughput);
        }
    }

    #[test]
    fn worst_scheduler_prefers_homogeneous_groups() {
        // With heterogeneity-boosted rates, the worst scheduler must spend
        // most time in the slowest (homogeneous) coschedules.
        let t = heterogeneity_table(&symbiotic_rates(), 10_000, 4).unwrap();
        assert!(
            t.row(1).unwrap().worst_fraction > 0.5,
            "worst scheduler should sit in homogeneous coschedules, got {}",
            t.row(1).unwrap().worst_fraction
        );
        assert!(t.row(4).unwrap().worst_fraction < 0.1);
    }

    #[test]
    fn fcfs_mix_tracks_random_draw_probabilities() {
        // With insensitive *equal* jobs, FCFS coschedule fractions follow
        // the i.i.d. uniform draw distribution exactly (no speed bias).
        let rates = WorkloadRates::build(4, 4, |s| {
            s.counts().iter().map(|&c| c as f64 * 0.25).collect()
        })
        .unwrap();
        let t = heterogeneity_table(&rates, 120_000, 5).unwrap();
        for het in 1..=4 {
            let p = random_draw_heterogeneity_probability(4, 4, het);
            let f = t.row(het).unwrap().fcfs_fraction;
            assert!(
                (p - f).abs() < 0.02,
                "het {het}: expected {p:.3}, measured {f:.3}"
            );
        }
    }

    #[test]
    fn random_draw_probabilities_match_paper_numbers() {
        // Section V-D quotes 2%, 33%, 56%, 9% for N = K = 4.
        let p: Vec<f64> = (1..=4)
            .map(|h| random_draw_heterogeneity_probability(4, 4, h))
            .collect();
        assert!((p[0] - 0.015625).abs() < 1e-9); // 4/256 ~ 2%
        assert!((p[1] - 0.328125).abs() < 1e-9); // 84/256 ~ 33%
        assert!((p[2] - 0.5625).abs() < 1e-9); // 144/256 ~ 56%
        assert!((p[3] - 0.09375).abs() < 1e-9); // 24/256 ~ 9%
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
