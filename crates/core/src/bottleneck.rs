//! Figure 3: the linear-bottleneck least-squares analysis (Section V-C1b).
//!
//! A *linear bottleneck* is a fully utilised shared resource that every
//! job's execution rate is proportional to its share of: `r_b(s) =
//! f_b(s) * R_b` with `sum_b f_b(s) = 1`. Then `sum_b r_b(s)/R_b = 1` holds
//! for every coschedule `s` and average throughput is scheduler-independent
//! (`AT = N / sum_b 1/R_b`, Equation 7).
//!
//! Real workloads are never exactly linear; the least-squares error of the
//! best-fitting `R_b` measures how close a workload is to one. Substituting
//! `y_b = 1/R_b` makes the fit *linear* least squares: minimise
//! `sum_s (sum_b r_b(s) y_b - 1)^2`.

use lp::{linsys, Matrix};

use crate::error::SymbiosisError;
use crate::metrics::mean;
use crate::rates::WorkloadRates;

/// Result of fitting the linear-bottleneck model to a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckFit {
    /// Mean squared residual `epsilon^2 = (1/|S|) sum_s (sum_b r_b(s)/R_b - 1)^2`.
    /// Zero means an exact linear bottleneck.
    pub mse: f64,
    /// Fitted full-resource rates `R_b` (may be negative for workloads far
    /// from a bottleneck; they are a fitting device, not physical rates).
    pub full_rates: Vec<f64>,
    /// Scheduler-independent throughput predicted by the bottleneck model,
    /// `N / sum_b 1/R_b` (Equation 7); `None` if the fit is degenerate.
    pub predicted_throughput: Option<f64>,
}

/// Fits the linear-bottleneck model to one workload (one Figure 3 point's
/// X coordinate).
///
/// # Errors
///
/// Returns [`SymbiosisError::InvalidParameter`] if the normal equations are
/// singular even after regularisation (requires a degenerate rate table).
///
/// # Examples
///
/// An exact bottleneck fits with (near-)zero error:
///
/// ```
/// use symbiosis::{fit_linear_bottleneck, WorkloadRates};
///
/// // Dispatch-width bottleneck: each job gets an equal share of the pipe.
/// let rates = WorkloadRates::build(2, 2, |s| {
///     let big_r = [1.6, 0.8]; // full-resource rates
///     let k = s.size() as f64;
///     s.counts().iter().zip(big_r).map(|(&c, r)| c as f64 / k * r).collect()
/// })?;
/// let fit = fit_linear_bottleneck(&rates)?;
/// assert!(fit.mse < 1e-12);
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub fn fit_linear_bottleneck(rates: &WorkloadRates) -> Result<BottleneckFit, SymbiosisError> {
    fit_linear_bottleneck_rows(rates.rate_rows(), rates.num_types())
}

/// The row-based core of [`fit_linear_bottleneck`]: fits the bottleneck
/// model to an arbitrary set of per-coschedule total-rate rows (each row is
/// `r_b(s)` for one coschedule `s`, length `num_types`).
///
/// [`fit_linear_bottleneck`] passes every row of a full table; the
/// `predict` crate's bottleneck [`Fitter`] passes only a *sampled* subset —
/// the paper's "predict instead of measure" move. The normal-equations
/// arithmetic is identical, so fitting on the full row set reproduces the
/// table-based fit bitwise.
///
/// [`Fitter`]: https://docs.rs/predict
///
/// # Errors
///
/// Returns [`SymbiosisError::InvalidParameter`] if `rows` is empty or the
/// normal equations are singular even after regularisation.
pub fn fit_linear_bottleneck_rows<R: AsRef<[f64]>>(
    rows: &[R],
    num_types: usize,
) -> Result<BottleneckFit, SymbiosisError> {
    let n_s = rows.len();
    let n = num_types;
    if n_s == 0 {
        return Err(SymbiosisError::InvalidParameter(
            "bottleneck fit: no coschedule samples".into(),
        ));
    }
    let mut a = Matrix::zeros(n_s, n);
    for (si, row) in rows.iter().enumerate() {
        let row = row.as_ref();
        assert_eq!(row.len(), n, "rate row length mismatch");
        for b in 0..n {
            a[(si, b)] = row[b];
        }
    }
    let target = vec![1.0; n_s];
    let y = linsys::least_squares(&a, &target)
        .map_err(|e| SymbiosisError::InvalidParameter(format!("bottleneck fit: {e}")))?;
    let mse = linsys::residual_ss(&a, &y, &target) / n_s as f64;
    let full_rates: Vec<f64> = y
        .iter()
        .map(|&yb| {
            if yb.abs() < 1e-12 {
                f64::INFINITY
            } else {
                1.0 / yb
            }
        })
        .collect();
    let denom: f64 = y.iter().sum();
    let predicted_throughput = (denom > 1e-12).then_some(n as f64 / denom);
    Ok(BottleneckFit {
        mse,
        full_rates,
        predicted_throughput,
    })
}

/// The Figure 3 colour coordinate: the spread in average per-job WIPC
/// between the workload's job types (max minus min over types of the mean
/// per-job rate across coschedules containing the type).
pub fn per_type_rate_difference(rates: &WorkloadRates) -> f64 {
    let n = rates.num_types();
    let n_s = rates.coschedules().len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for b in 0..n {
        let avg = mean(
            (0..n_s)
                .filter(|&si| rates.coschedules()[si].count(b) > 0)
                .map(|si| rates.per_job_rate(si, b)),
        )
        .unwrap_or(0.0);
        lo = lo.min(avg);
        hi = hi.max(avg);
    }
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_schedule, Objective};

    #[test]
    fn row_based_fit_reproduces_table_fit_bitwise() {
        let rates = exact_bottleneck(&[1.7, 0.9, 0.4], 3);
        let via_table = fit_linear_bottleneck(&rates).unwrap();
        let via_rows = fit_linear_bottleneck_rows(rates.rate_rows(), 3).unwrap();
        assert_eq!(via_table, via_rows);
    }

    #[test]
    fn row_based_fit_recovers_coefficients_from_a_subset() {
        // An exact bottleneck is identifiable from any spanning subset of
        // its coschedule rows — the sampled-fit property `predict` uses.
        let rates = exact_bottleneck(&[2.0, 1.0, 0.5], 3);
        let subset: Vec<&[f64]> = rates
            .rate_rows()
            .iter()
            .step_by(2)
            .map(Vec::as_slice)
            .collect();
        assert!(subset.len() < rates.coschedules().len());
        let fit = fit_linear_bottleneck_rows(&subset, 3).unwrap();
        assert!(fit.mse < 1e-15, "mse {}", fit.mse);
        for (got, want) in fit.full_rates.iter().zip([2.0, 1.0, 0.5]) {
            assert!((got - want).abs() < 1e-6, "R_b {got} vs {want}");
        }
    }

    #[test]
    fn row_based_fit_rejects_empty_samples() {
        let rows: [&[f64]; 0] = [];
        assert!(matches!(
            fit_linear_bottleneck_rows(&rows, 2),
            Err(SymbiosisError::InvalidParameter(_))
        ));
    }

    fn exact_bottleneck(big_r: &'static [f64], k: usize) -> WorkloadRates {
        WorkloadRates::build(big_r.len(), k, move |s| {
            let total = s.size() as f64;
            s.counts()
                .iter()
                .zip(big_r)
                .map(|(&c, &r)| c as f64 / total * r)
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn exact_bottleneck_has_zero_error() {
        let rates = exact_bottleneck(&[2.0, 1.0, 0.5], 3);
        let fit = fit_linear_bottleneck(&rates).unwrap();
        assert!(fit.mse < 1e-15, "mse {}", fit.mse);
        for (got, want) in fit.full_rates.iter().zip([2.0, 1.0, 0.5]) {
            assert!((got - want).abs() < 1e-6, "R_b {got} vs {want}");
        }
    }

    #[test]
    fn bottleneck_prediction_matches_lp_for_exact_case() {
        // Section V-C1b: with an exact bottleneck, throughput is fixed.
        let rates = exact_bottleneck(&[1.8, 0.9], 2);
        let fit = fit_linear_bottleneck(&rates).unwrap();
        let predicted = fit.predicted_throughput.unwrap();
        let best = optimal_schedule(&rates, Objective::MaxThroughput)
            .unwrap()
            .throughput;
        let worst = optimal_schedule(&rates, Objective::MinThroughput)
            .unwrap()
            .throughput;
        assert!((best - worst).abs() < 1e-7, "scheduler independent");
        assert!(
            (best - predicted).abs() < 1e-6,
            "lp {best} vs fit {predicted}"
        );
    }

    #[test]
    fn insensitive_jobs_are_a_special_bottleneck() {
        // Insensitive jobs: r_b(s) = c_b * rate_b = (c_b/K) * (K*rate_b).
        let rates = WorkloadRates::build(2, 4, |s| {
            s.counts()
                .iter()
                .zip([0.5, 0.25])
                .map(|(&c, r)| c as f64 * r)
                .collect()
        })
        .unwrap();
        let fit = fit_linear_bottleneck(&rates).unwrap();
        assert!(fit.mse < 1e-15);
        // R_b = K * rate_b.
        assert!((fit.full_rates[0] - 2.0).abs() < 1e-6);
        assert!((fit.full_rates[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_bottleneck_workload_has_positive_error() {
        // Strong symbiosis effects cannot be explained by a single shared
        // resource: heterogeneity boosts everyone superlinearly.
        let rates = WorkloadRates::build(3, 3, |s| {
            let boost = 0.4 + 0.3 * s.heterogeneity() as f64;
            s.counts().iter().map(|&c| c as f64 * 0.4 * boost).collect()
        })
        .unwrap();
        let fit = fit_linear_bottleneck(&rates).unwrap();
        assert!(fit.mse > 1e-4, "mse {} should be clearly positive", fit.mse);
    }

    #[test]
    fn rate_difference_zero_for_identical_types() {
        let rates = exact_bottleneck(&[1.0, 1.0], 2);
        assert!(per_type_rate_difference(&rates) < 1e-12);
    }

    #[test]
    fn rate_difference_orders_workloads() {
        let near = exact_bottleneck(&[1.0, 0.9], 2);
        let far = exact_bottleneck(&[1.6, 0.4], 2);
        assert!(per_type_rate_difference(&far) > per_type_rate_difference(&near));
    }
}
