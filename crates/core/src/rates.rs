//! Per-coschedule execution rates — the scheduler's knowledge.
//!
//! Two representations live here:
//!
//! * [`WorkloadRates`] — the materialised table of every *full* coschedule
//!   of one workload, consumed by the LP / Markov / variability analyses;
//! * [`RateModel`] — the workspace-wide trait over *any* rate source
//!   (measured tables, analytic closures, caches), including partial
//!   coschedules for the latency experiments. The `queueing` crate's
//!   schedulers and the `session` crate's [`Session`] entry point consume
//!   this trait.
//!
//! # `RateModel` implementors
//!
//! Every implementation passes the shared contract test
//! [`assert_rate_model_conformance`]:
//!
//! | Implementor | Crate | Rates come from | Partial coschedules |
//! |-------------|-------|-----------------|---------------------|
//! | [`WorkloadRates`] | `symbiosis` | a materialised full-coschedule table | no (saturated analyses only) |
//! | [`AnalyticModel`] | `symbiosis` | a per-job rate closure | yes |
//! | [`CachedModel`] | `symbiosis` | memoized queries of an inner model | inherited from the inner model |
//! | `workloads::WorkloadView` | `workloads` | simulated per-slot IPCs of a [`PerfTable`] | yes |
//! | `predict::PredictedModel` | `predict` | an interference model fitted to sampled measurements ([`Fitter`]) | yes |
//!
//! [`Session`]: https://docs.rs/session
//! [`PerfTable`]: https://docs.rs/workloads
//! [`Fitter`]: https://docs.rs/predict

use std::collections::HashMap;
use std::sync::Mutex;

use crate::coschedule::{enumerate_coschedules, Coschedule, CoscheduleRank};
use crate::error::SymbiosisError;

/// A source of per-coschedule execution rates — the one abstraction every
/// scheduler and analysis in the workspace consumes.
///
/// `counts` describes a multiset of jobs occupying the machine (length
/// [`RateModel::num_types`], total between 1 and [`RateModel::contexts`]).
/// Implementations backed by saturated-machine tables may only support
/// *full* multisets (`counts.sum() == contexts`); they advertise that via
/// [`RateModel::supports_partial`] and the latency experiments reject them
/// up front.
///
/// # Examples
///
/// ```
/// use symbiosis::{AnalyticModel, RateModel};
///
/// // Each job runs at its solo speed divided by the number of co-runners.
/// let m = AnalyticModel::new(2, 4, |counts, ty| {
///     let n: u32 = counts.iter().sum();
///     [1.0, 0.5][ty] / n as f64
/// });
/// assert_eq!(m.per_job_rate(&[1, 0], 0), 1.0);
/// assert!((m.instantaneous_throughput(&[2, 2]) - (2.0 * 0.25 + 2.0 * 0.125)).abs() < 1e-12);
/// ```
pub trait RateModel {
    /// Number of job types.
    fn num_types(&self) -> usize;

    /// Number of hardware contexts.
    fn contexts(&self) -> usize;

    /// Execution rate of *one* job of type `ty` when the multiset described
    /// by `counts` occupies the machine, in work units per cycle.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `counts[ty] == 0`, the multiset is
    /// empty/oversized, or (for full-only models) the multiset is partial.
    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64;

    /// Total rate `r_ty(s)` of all jobs of type `ty` in the multiset
    /// (`counts[ty] * per_job_rate`), or 0 for an absent type.
    fn total_rate(&self, counts: &[u32], ty: usize) -> f64 {
        if counts[ty] == 0 {
            0.0
        } else {
            counts[ty] as f64 * self.per_job_rate(counts, ty)
        }
    }

    /// Total work rate of the multiset: `sum_ty counts[ty] * per_job_rate`.
    fn instantaneous_throughput(&self, counts: &[u32]) -> f64 {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(ty, &c)| c as f64 * self.per_job_rate(counts, ty))
            .sum()
    }

    /// Whether the model answers queries for partial multisets
    /// (`counts.sum() < contexts`). Latency experiments require this;
    /// saturated-machine analyses do not.
    fn supports_partial(&self) -> bool {
        true
    }

    /// Materialises the full-coschedule [`WorkloadRates`] table this model
    /// induces, for the LP / Markov / variability analyses.
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::InvalidRates`] if the model produces
    /// malformed rates (non-finite, non-positive for a present type).
    fn full_table(&self) -> Result<WorkloadRates, SymbiosisError> {
        let n = self.num_types();
        WorkloadRates::build(n, self.contexts(), |s| {
            (0..n).map(|b| self.total_rate(s.counts(), b)).collect()
        })
    }
}

impl<M: RateModel + ?Sized> RateModel for &M {
    fn num_types(&self) -> usize {
        (**self).num_types()
    }

    fn contexts(&self) -> usize {
        (**self).contexts()
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        (**self).per_job_rate(counts, ty)
    }

    fn total_rate(&self, counts: &[u32], ty: usize) -> f64 {
        (**self).total_rate(counts, ty)
    }

    fn instantaneous_throughput(&self, counts: &[u32]) -> f64 {
        (**self).instantaneous_throughput(counts)
    }

    fn supports_partial(&self) -> bool {
        (**self).supports_partial()
    }

    fn full_table(&self) -> Result<WorkloadRates, SymbiosisError> {
        (**self).full_table()
    }
}

/// A [`RateModel`] defined by a closure returning per-job rates.
///
/// The cheapest way to express predicted or synthetic rate sources — toy
/// contention laws, analytic interference models, digital-twin predictors.
pub struct AnalyticModel<F> {
    num_types: usize,
    contexts: usize,
    rate_fn: F,
}

impl<F> AnalyticModel<F>
where
    F: Fn(&[u32], usize) -> f64,
{
    /// Creates the model. `rate_fn(counts, ty)` must return the rate of one
    /// job of type `ty` inside the multiset `counts`.
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `contexts == 0`.
    pub fn new(num_types: usize, contexts: usize, rate_fn: F) -> Self {
        assert!(num_types > 0, "need at least one job type");
        assert!(contexts > 0, "need at least one context");
        AnalyticModel {
            num_types,
            contexts,
            rate_fn,
        }
    }
}

impl<F> RateModel for AnalyticModel<F>
where
    F: Fn(&[u32], usize) -> f64,
{
    fn num_types(&self) -> usize {
        self.num_types
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert_eq!(counts.len(), self.num_types, "counts length mismatch");
        assert!(counts[ty] > 0, "type {ty} not present");
        let n: u32 = counts.iter().sum();
        assert!(
            n >= 1 && n as usize <= self.contexts,
            "multiset size {n} out of range"
        );
        (self.rate_fn)(counts, ty)
    }
}

/// A memoizing wrapper caching per-job rates of an inner [`RateModel`].
///
/// Wrap expensive models (simulator-backed or heavyweight analytic
/// predictors) before handing them to the event-driven experiments, which
/// revisit the same multisets millions of times.
///
/// The hit path is allocation-free: a query probes the cache through the
/// borrowed `&[u32]` key and only clones the counts into an owned `Vec`
/// on a miss, when the row is computed and inserted. (An earlier version
/// cloned the key on *every* lookup via the entry API — a per-hit heap
/// allocation that dominated tight event loops; keep `get`-before-`insert`
/// when touching this code.)
pub struct CachedModel<M> {
    inner: M,
    cache: Mutex<HashMap<Vec<u32>, Vec<f64>>>,
}

impl<M: RateModel> CachedModel<M> {
    /// Wraps `inner` with an unbounded multiset-keyed cache.
    pub fn new(inner: M) -> Self {
        CachedModel {
            inner,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Number of multisets currently cached.
    pub fn cached_multisets(&self) -> usize {
        self.cache.lock().expect("poisoned").len()
    }
}

impl<M: RateModel> RateModel for CachedModel<M> {
    fn num_types(&self) -> usize {
        self.inner.num_types()
    }

    fn contexts(&self) -> usize {
        self.inner.contexts()
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert!(counts[ty] > 0, "type {ty} not present");
        let mut cache = self.cache.lock().expect("poisoned");
        // Hit path: borrowed-slice probe, no key clone. `HashMap<Vec<u32>,
        // _>` hashes `&[u32]` identically via `Borrow<[u32]>`.
        if let Some(row) = cache.get(counts) {
            return row[ty];
        }
        let row: Vec<f64> = (0..self.inner.num_types())
            .map(|b| {
                if counts[b] == 0 {
                    0.0
                } else {
                    self.inner.per_job_rate(counts, b)
                }
            })
            .collect();
        let rate = row[ty];
        cache.insert(counts.to_vec(), row);
        rate
    }

    fn supports_partial(&self) -> bool {
        self.inner.supports_partial()
    }
}

/// A full-coschedule table is itself a rate model — for the saturated
/// analyses only ([`RateModel::supports_partial`] is `false`).
impl RateModel for WorkloadRates {
    fn num_types(&self) -> usize {
        self.num_types
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        let si = self
            .index_of_counts(counts)
            .unwrap_or_else(|| panic!("coschedule {counts:?} not in the table"));
        WorkloadRates::per_job_rate(self, si, ty)
    }

    fn supports_partial(&self) -> bool {
        false
    }

    fn full_table(&self) -> Result<WorkloadRates, SymbiosisError> {
        Ok(self.clone())
    }
}

/// Asserts the [`RateModel`] contract on `model` — the shared conformance
/// check every implementation's test suite runs.
///
/// Verifies, over every full coschedule (and every partial multiset when
/// the model supports them): rates of present types are finite and
/// positive, absent types contribute zero, `total_rate` equals
/// `count * per_job_rate`, `instantaneous_throughput` equals the sum of
/// total rates, and [`RateModel::full_table`] reproduces the same numbers.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn assert_rate_model_conformance(model: &dyn RateModel) {
    let n = model.num_types();
    let k = model.contexts();
    assert!(n > 0, "model must have at least one type");
    assert!(k > 0, "model must have at least one context");

    let sizes = if model.supports_partial() {
        1..=k
    } else {
        k..=k
    };
    for size in sizes {
        for s in enumerate_coschedules(n, size) {
            let counts = s.counts();
            let mut sum = 0.0;
            for ty in 0..n {
                let total = model.total_rate(counts, ty);
                if counts[ty] == 0 {
                    assert_eq!(
                        total, 0.0,
                        "absent type {ty} in {counts:?} has rate {total}"
                    );
                    continue;
                }
                let per_job = model.per_job_rate(counts, ty);
                assert!(
                    per_job.is_finite() && per_job > 0.0,
                    "present type {ty} in {counts:?} has per-job rate {per_job}"
                );
                assert!(
                    (total - counts[ty] as f64 * per_job).abs() <= 1e-9 * total.abs().max(1.0),
                    "total_rate {total} != count * per_job {per_job} for {counts:?}"
                );
                sum += total;
            }
            let it = model.instantaneous_throughput(counts);
            assert!(
                (it - sum).abs() <= 1e-9 * sum.abs().max(1.0),
                "instantaneous_throughput {it} != sum of totals {sum} for {counts:?}"
            );
        }
    }

    let table = model.full_table().expect("full_table must build");
    assert_eq!(table.num_types(), n);
    assert_eq!(table.contexts(), k);
    for (si, s) in table.coschedules().iter().enumerate() {
        for ty in 0..n {
            let via_table = table.rate(si, ty);
            let via_model = model.total_rate(s.counts(), ty);
            assert!(
                (via_table - via_model).abs() <= 1e-9 * via_model.abs().max(1.0),
                "full_table rate {via_table} != model rate {via_model} for {s}"
            );
        }
    }
}

/// Execution rates of every job type in every possible coschedule of one
/// workload, in weighted instructions per cycle (WIPC).
///
/// `rate(s, b)` is `r_b(s)` from Section IV of the paper: the *total*
/// execution rate of all jobs of type `b` in coschedule `s` (if two type-`b`
/// jobs run, it is the sum of their rates). Weighted instructions normalise
/// each type by its solo execution rate, so a job running alone at full
/// speed has rate 1.
///
/// # Examples
///
/// ```
/// use symbiosis::WorkloadRates;
///
/// // Two job types on a 2-context machine; a toy rate model where each job
/// // runs at 1/(number of co-runners + its own weight).
/// let rates = WorkloadRates::build(2, 2, |s| {
///     s.counts()
///         .iter()
///         .map(|&c| c as f64 * 0.9f64.powi(s.size() as i32 - 1))
///         .collect()
/// })?;
/// assert_eq!(rates.coschedules().len(), 3); // AA, AB, BB
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRates {
    num_types: usize,
    contexts: usize,
    coschedules: Vec<Coschedule>,
    /// Perfect index into the enumeration order: `rank.rank(counts)` *is*
    /// the coschedule index, so lookups are O(`num_types`) arithmetic with
    /// zero allocation (formerly a `HashMap<Vec<u32>, usize>` that hashed
    /// the full count vector per probe and held one heap key per state).
    rank: CoscheduleRank,
    /// `rates[s][b]` = total WIPC of type `b` in coschedule `s`.
    rates: Vec<Vec<f64>>,
}

impl WorkloadRates {
    /// Enumerates all coschedules of `contexts` jobs over `num_types` types
    /// and obtains each one's per-type rates from `rate_fn`.
    ///
    /// `rate_fn` must return a vector of length `num_types` whose entry `b`
    /// is the total rate of type `b` in the queried coschedule.
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::InvalidRates`] if any returned vector has
    /// the wrong length, contains a negative/non-finite value, is positive
    /// for an absent type, or is zero for a present type.
    pub fn build<F>(
        num_types: usize,
        contexts: usize,
        mut rate_fn: F,
    ) -> Result<Self, SymbiosisError>
    where
        F: FnMut(&Coschedule) -> Vec<f64>,
    {
        let coschedules = enumerate_coschedules(num_types, contexts);
        let mut rates = Vec::with_capacity(coschedules.len());
        for s in &coschedules {
            let r = rate_fn(s);
            Self::check_rates(s, &r)?;
            rates.push(r);
        }
        // The enumeration is the CoscheduleIter order, so the closed-form
        // rank is a perfect index — no materialised key map needed.
        let rank = CoscheduleRank::new(num_types, contexts);
        debug_assert_eq!(rank.total(), coschedules.len());
        Ok(WorkloadRates {
            num_types,
            contexts,
            coschedules,
            rank,
            rates,
        })
    }

    fn check_rates(s: &Coschedule, r: &[f64]) -> Result<(), SymbiosisError> {
        if r.len() != s.num_types() {
            return Err(SymbiosisError::InvalidRates(format!(
                "coschedule {s}: expected {} rates, got {}",
                s.num_types(),
                r.len()
            )));
        }
        for (b, &v) in r.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: rate of type {b} is {v}"
                )));
            }
            if s.count(b) == 0 && v != 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: absent type {b} has non-zero rate {v}"
                )));
            }
            if s.count(b) > 0 && v <= 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: present type {b} has non-positive rate {v}"
                )));
            }
        }
        Ok(())
    }

    /// Number of job types in the workload.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Number of hardware contexts (jobs per coschedule).
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// All coschedules, in enumeration order (indices used throughout).
    pub fn coschedules(&self) -> &[Coschedule] {
        &self.coschedules
    }

    /// Index of a coschedule given its counts, if it belongs to this table.
    pub fn index_of(&self, s: &Coschedule) -> Option<usize> {
        self.index_of_counts(s.counts())
    }

    /// Index of a coschedule given a bare count slice — the allocation-free
    /// lookup the sparse Markov generator and the event loop lean on. A
    /// probe is O(`num_types`) rank arithmetic (no hashing, no heap).
    pub fn index_of_counts(&self, counts: &[u32]) -> Option<usize> {
        self.rank.rank(counts)
    }

    /// The table's perfect rank index — lets the Markov generator walk a
    /// state's whole neighbor row through
    /// [`CoscheduleRank::replace_ranks`] instead of ranking each target
    /// from scratch.
    pub(crate) fn rank_table(&self) -> &CoscheduleRank {
        &self.rank
    }

    /// Total rate `r_b(s)` of job type `b` in coschedule index `si`.
    ///
    /// # Panics
    ///
    /// Panics if `si` or `b` is out of range.
    pub fn rate(&self, si: usize, b: usize) -> f64 {
        self.rates[si][b]
    }

    /// Rate of *one* job of type `b` in coschedule `si` (total rate divided
    /// by the number of type-`b` jobs), or 0 if the type is absent.
    pub fn per_job_rate(&self, si: usize, b: usize) -> f64 {
        let c = self.coschedules[si].count(b);
        if c == 0 {
            0.0
        } else {
            self.rates[si][b] / c as f64
        }
    }

    /// Instantaneous throughput `it(s) = sum_b r_b(s)` (Equation 1).
    pub fn instantaneous_throughput(&self, si: usize) -> f64 {
        self.rates[si].iter().sum()
    }

    /// All per-type rate rows (aligned with [`WorkloadRates::coschedules`]).
    pub fn rate_rows(&self) -> &[Vec<f64>] {
        &self.rates
    }

    /// Derives a new table with one coschedule's rates replaced.
    ///
    /// Used by the Section V-D counterfactual (redistributing per-job
    /// performance inside the fully heterogeneous coschedule).
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::InvalidRates`] if the new rates are
    /// malformed, or [`SymbiosisError::UnknownCoschedule`] for a bad index.
    pub fn with_rates(&self, si: usize, new_rates: Vec<f64>) -> Result<Self, SymbiosisError> {
        let s = self
            .coschedules
            .get(si)
            .ok_or(SymbiosisError::UnknownCoschedule(si))?;
        Self::check_rates(s, &new_rates)?;
        let mut clone = self.clone();
        clone.rates[si] = new_rates;
        Ok(clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple analytic rate model: each job gets an equal share of a
    /// width-4 pipe, scaled by a per-type solo speed.
    fn toy_rates(num_types: usize, contexts: usize) -> WorkloadRates {
        WorkloadRates::build(num_types, contexts, |s| {
            let k = s.size() as f64;
            s.counts().iter().map(|&c| c as f64 / k.max(1.0)).collect()
        })
        .unwrap()
    }

    #[test]
    fn builds_all_coschedules() {
        let r = toy_rates(4, 4);
        assert_eq!(r.coschedules().len(), 35);
        assert_eq!(r.num_types(), 4);
        assert_eq!(r.contexts(), 4);
    }

    #[test]
    fn index_round_trips() {
        let r = toy_rates(3, 2);
        for (i, s) in r.coschedules().iter().enumerate() {
            assert_eq!(r.index_of(s), Some(i));
        }
        let foreign = Coschedule::from_counts(vec![1, 1, 1]);
        assert_eq!(r.index_of(&foreign), None, "size-3 coschedule not in table");
    }

    #[test]
    fn per_job_rate_divides_by_count() {
        let r = toy_rates(2, 4);
        let si = r.index_of(&Coschedule::from_counts(vec![3, 1])).unwrap();
        assert!((r.rate(si, 0) - 0.75).abs() < 1e-12);
        assert!((r.per_job_rate(si, 0) - 0.25).abs() < 1e-12);
        assert!((r.per_job_rate(si, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_throughput_sums_rates() {
        let r = toy_rates(3, 3);
        for si in 0..r.coschedules().len() {
            let manual: f64 = (0..3).map(|b| r.rate(si, b)).sum();
            assert!((r.instantaneous_throughput(si) - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn absent_type_with_rate_rejected() {
        let err = WorkloadRates::build(2, 2, |_| vec![0.5, 0.5]).unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn present_type_with_zero_rate_rejected() {
        let err =
            WorkloadRates::build(2, 2, |s| s.counts().iter().map(|_| 0.0).collect()).unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn wrong_length_rejected() {
        let err = WorkloadRates::build(2, 2, |_| vec![1.0]).unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn non_finite_rate_rejected() {
        let err = WorkloadRates::build(2, 2, |s| {
            s.counts()
                .iter()
                .map(|&c| if c > 0 { f64::NAN } else { 0.0 })
                .collect()
        })
        .unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    fn contention(
        num_types: usize,
        contexts: usize,
    ) -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(num_types, contexts, move |counts, ty| {
            let n: u32 = counts.iter().sum();
            (0.4 + 0.1 * ty as f64) / (1.0 + 0.2 * (n - 1) as f64)
        })
    }

    #[test]
    fn analytic_model_passes_conformance() {
        assert_rate_model_conformance(&contention(3, 4));
        assert_rate_model_conformance(&contention(1, 1));
    }

    #[test]
    fn cached_model_passes_conformance_and_memoizes() {
        let cached = CachedModel::new(contention(2, 3));
        assert_rate_model_conformance(&cached);
        let before = cached.cached_multisets();
        assert!(before > 0, "conformance check must populate the cache");
        // Replaying queries must not grow the cache.
        let _ = cached.per_job_rate(&[1, 1], 0);
        assert_eq!(cached.cached_multisets(), before);
        // Cached answers match the inner model.
        assert_eq!(
            cached.per_job_rate(&[2, 1], 1),
            cached.inner().per_job_rate(&[2, 1], 1)
        );
    }

    #[test]
    fn workload_rates_passes_conformance_as_full_only_model() {
        let table = toy_rates(3, 3);
        assert!(!RateModel::supports_partial(&table));
        assert_rate_model_conformance(&table);
        // Trait access agrees with the inherent index-based accessors.
        let si = table
            .index_of(&Coschedule::from_counts(vec![2, 1, 0]))
            .unwrap();
        assert_eq!(
            RateModel::per_job_rate(&table, &[2, 1, 0], 0),
            table.per_job_rate(si, 0)
        );
        // full_table round-trips to an identical table.
        assert_eq!(RateModel::full_table(&table).unwrap(), table);
    }

    #[test]
    fn full_table_materialises_analytic_models() {
        let table = contention(2, 2).full_table().unwrap();
        assert_eq!(table.coschedules().len(), 3);
        // AA: two type-0 jobs at 0.4 / 1.2 each.
        let si = table
            .index_of(&Coschedule::from_counts(vec![2, 0]))
            .unwrap();
        assert!((table.rate(si, 0) - 2.0 * 0.4 / 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn analytic_model_rejects_absent_type_queries() {
        let _ = contention(2, 2).per_job_rate(&[1, 0], 1);
    }

    #[test]
    fn with_rates_replaces_one_row() {
        let r = toy_rates(2, 2);
        let si = r.index_of(&Coschedule::from_counts(vec![1, 1])).unwrap();
        let modified = r.with_rates(si, vec![0.8, 0.2]).unwrap();
        assert!((modified.rate(si, 0) - 0.8).abs() < 1e-12);
        // Other rows untouched.
        for i in 0..r.coschedules().len() {
            if i != si {
                assert_eq!(r.rate_rows()[i], modified.rate_rows()[i]);
            }
        }
        // Invalid replacement rejected.
        assert!(r.with_rates(si, vec![0.8, 0.0]).is_err());
        assert!(r.with_rates(99, vec![0.5, 0.5]).is_err());
    }
}
