//! Per-coschedule execution-rate tables — the scheduler's knowledge.

use std::collections::HashMap;

use crate::coschedule::{enumerate_coschedules, Coschedule};
use crate::error::SymbiosisError;

/// Execution rates of every job type in every possible coschedule of one
/// workload, in weighted instructions per cycle (WIPC).
///
/// `rate(s, b)` is `r_b(s)` from Section IV of the paper: the *total*
/// execution rate of all jobs of type `b` in coschedule `s` (if two type-`b`
/// jobs run, it is the sum of their rates). Weighted instructions normalise
/// each type by its solo execution rate, so a job running alone at full
/// speed has rate 1.
///
/// # Examples
///
/// ```
/// use symbiosis::WorkloadRates;
///
/// // Two job types on a 2-context machine; a toy rate model where each job
/// // runs at 1/(number of co-runners + its own weight).
/// let rates = WorkloadRates::build(2, 2, |s| {
///     s.counts()
///         .iter()
///         .map(|&c| c as f64 * 0.9f64.powi(s.size() as i32 - 1))
///         .collect()
/// })?;
/// assert_eq!(rates.coschedules().len(), 3); // AA, AB, BB
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRates {
    num_types: usize,
    contexts: usize,
    coschedules: Vec<Coschedule>,
    index: HashMap<Vec<u32>, usize>,
    /// `rates[s][b]` = total WIPC of type `b` in coschedule `s`.
    rates: Vec<Vec<f64>>,
}

impl WorkloadRates {
    /// Enumerates all coschedules of `contexts` jobs over `num_types` types
    /// and obtains each one's per-type rates from `rate_fn`.
    ///
    /// `rate_fn` must return a vector of length `num_types` whose entry `b`
    /// is the total rate of type `b` in the queried coschedule.
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::InvalidRates`] if any returned vector has
    /// the wrong length, contains a negative/non-finite value, is positive
    /// for an absent type, or is zero for a present type.
    pub fn build<F>(
        num_types: usize,
        contexts: usize,
        mut rate_fn: F,
    ) -> Result<Self, SymbiosisError>
    where
        F: FnMut(&Coschedule) -> Vec<f64>,
    {
        let coschedules = enumerate_coschedules(num_types, contexts);
        let mut rates = Vec::with_capacity(coschedules.len());
        for s in &coschedules {
            let r = rate_fn(s);
            Self::check_rates(s, &r)?;
            rates.push(r);
        }
        let index = coschedules
            .iter()
            .enumerate()
            .map(|(i, s)| (s.counts().to_vec(), i))
            .collect();
        Ok(WorkloadRates {
            num_types,
            contexts,
            coschedules,
            index,
            rates,
        })
    }

    fn check_rates(s: &Coschedule, r: &[f64]) -> Result<(), SymbiosisError> {
        if r.len() != s.num_types() {
            return Err(SymbiosisError::InvalidRates(format!(
                "coschedule {s}: expected {} rates, got {}",
                s.num_types(),
                r.len()
            )));
        }
        for (b, &v) in r.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: rate of type {b} is {v}"
                )));
            }
            if s.count(b) == 0 && v != 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: absent type {b} has non-zero rate {v}"
                )));
            }
            if s.count(b) > 0 && v <= 0.0 {
                return Err(SymbiosisError::InvalidRates(format!(
                    "coschedule {s}: present type {b} has non-positive rate {v}"
                )));
            }
        }
        Ok(())
    }

    /// Number of job types in the workload.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Number of hardware contexts (jobs per coschedule).
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// All coschedules, in enumeration order (indices used throughout).
    pub fn coschedules(&self) -> &[Coschedule] {
        &self.coschedules
    }

    /// Index of a coschedule given its counts, if it belongs to this table.
    pub fn index_of(&self, s: &Coschedule) -> Option<usize> {
        self.index.get(s.counts()).copied()
    }

    /// Total rate `r_b(s)` of job type `b` in coschedule index `si`.
    ///
    /// # Panics
    ///
    /// Panics if `si` or `b` is out of range.
    pub fn rate(&self, si: usize, b: usize) -> f64 {
        self.rates[si][b]
    }

    /// Rate of *one* job of type `b` in coschedule `si` (total rate divided
    /// by the number of type-`b` jobs), or 0 if the type is absent.
    pub fn per_job_rate(&self, si: usize, b: usize) -> f64 {
        let c = self.coschedules[si].count(b);
        if c == 0 {
            0.0
        } else {
            self.rates[si][b] / c as f64
        }
    }

    /// Instantaneous throughput `it(s) = sum_b r_b(s)` (Equation 1).
    pub fn instantaneous_throughput(&self, si: usize) -> f64 {
        self.rates[si].iter().sum()
    }

    /// All per-type rate rows (aligned with [`WorkloadRates::coschedules`]).
    pub fn rate_rows(&self) -> &[Vec<f64>] {
        &self.rates
    }

    /// Derives a new table with one coschedule's rates replaced.
    ///
    /// Used by the Section V-D counterfactual (redistributing per-job
    /// performance inside the fully heterogeneous coschedule).
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::InvalidRates`] if the new rates are
    /// malformed, or [`SymbiosisError::UnknownCoschedule`] for a bad index.
    pub fn with_rates(&self, si: usize, new_rates: Vec<f64>) -> Result<Self, SymbiosisError> {
        let s = self
            .coschedules
            .get(si)
            .ok_or(SymbiosisError::UnknownCoschedule(si))?;
        Self::check_rates(s, &new_rates)?;
        let mut clone = self.clone();
        clone.rates[si] = new_rates;
        Ok(clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple analytic rate model: each job gets an equal share of a
    /// width-4 pipe, scaled by a per-type solo speed.
    fn toy_rates(num_types: usize, contexts: usize) -> WorkloadRates {
        WorkloadRates::build(num_types, contexts, |s| {
            let k = s.size() as f64;
            s.counts()
                .iter()
                .map(|&c| c as f64 / k.max(1.0))
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn builds_all_coschedules() {
        let r = toy_rates(4, 4);
        assert_eq!(r.coschedules().len(), 35);
        assert_eq!(r.num_types(), 4);
        assert_eq!(r.contexts(), 4);
    }

    #[test]
    fn index_round_trips() {
        let r = toy_rates(3, 2);
        for (i, s) in r.coschedules().iter().enumerate() {
            assert_eq!(r.index_of(s), Some(i));
        }
        let foreign = Coschedule::from_counts(vec![1, 1, 1]);
        assert_eq!(r.index_of(&foreign), None, "size-3 coschedule not in table");
    }

    #[test]
    fn per_job_rate_divides_by_count() {
        let r = toy_rates(2, 4);
        let si = r
            .index_of(&Coschedule::from_counts(vec![3, 1]))
            .unwrap();
        assert!((r.rate(si, 0) - 0.75).abs() < 1e-12);
        assert!((r.per_job_rate(si, 0) - 0.25).abs() < 1e-12);
        assert!((r.per_job_rate(si, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_throughput_sums_rates() {
        let r = toy_rates(3, 3);
        for si in 0..r.coschedules().len() {
            let manual: f64 = (0..3).map(|b| r.rate(si, b)).sum();
            assert!((r.instantaneous_throughput(si) - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn absent_type_with_rate_rejected() {
        let err = WorkloadRates::build(2, 2, |_| vec![0.5, 0.5]).unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn present_type_with_zero_rate_rejected() {
        let err = WorkloadRates::build(2, 2, |s| {
            s.counts().iter().map(|_| 0.0).collect()
        })
        .unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn wrong_length_rejected() {
        let err = WorkloadRates::build(2, 2, |_| vec![1.0]).unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn non_finite_rate_rejected() {
        let err = WorkloadRates::build(2, 2, |s| {
            s.counts()
                .iter()
                .map(|&c| if c > 0 { f64::NAN } else { 0.0 })
                .collect()
        })
        .unwrap_err();
        assert!(matches!(err, SymbiosisError::InvalidRates(_)));
    }

    #[test]
    fn with_rates_replaces_one_row() {
        let r = toy_rates(2, 2);
        let si = r
            .index_of(&Coschedule::from_counts(vec![1, 1]))
            .unwrap();
        let modified = r.with_rates(si, vec![0.8, 0.2]).unwrap();
        assert!((modified.rate(si, 0) - 0.8).abs() < 1e-12);
        // Other rows untouched.
        for i in 0..r.coschedules().len() {
            if i != si {
                assert_eq!(r.rate_rows()[i], modified.rate_rows()[i]);
            }
        }
        // Invalid replacement rejected.
        assert!(r.with_rates(si, vec![0.8, 0.0]).is_err());
        assert!(r.with_rates(99, vec![0.5, 0.5]).is_err());
    }
}
