//! FCFS (first-come first-served) average throughput.
//!
//! The paper's baseline scheduler knows nothing about the workload: jobs are
//! taken from the queue in arrival order, and arrival order is random
//! (job types i.i.d. uniform). Two estimators are provided:
//!
//! * [`fcfs_throughput`] — an event-driven *maximum throughput experiment*:
//!   a fully loaded machine executes `jobs` equal-work jobs; throughput is
//!   total work over makespan. This mirrors the TPCalc construction the
//!   paper cites (Eyerman et al., TACO 2014).
//! * [`fcfs_throughput_markov`] — an exact continuous-time Markov-chain
//!   solution under exponentially distributed job sizes: the coschedule
//!   multiset is a CTMC state; its stationary distribution yields the
//!   long-run throughput without simulation.
//!
//! For large job counts the two agree closely (the experiment uses
//! deterministic sizes by default; size distribution has only a small
//! effect on the equilibrium coschedule mix).

use lp::{linsys, Matrix};

use crate::error::SymbiosisError;
use crate::rates::WorkloadRates;
use crate::rng::SplitMix64;

/// Distribution of job sizes (total work per job) in the FCFS experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobSize {
    /// Every job carries exactly one unit of work (the paper's maximum
    /// throughput experiment: jobs sized to equal solo execution time).
    Deterministic,
    /// Exponentially distributed work with mean one (matches the Markov
    /// analysis and Snavely et al.'s setup).
    Exponential,
}

/// Result of an FCFS throughput experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FcfsOutcome {
    /// Long-run average throughput (weighted instructions per cycle).
    pub throughput: f64,
    /// Fraction of time spent in each coschedule (aligned with
    /// [`WorkloadRates::coschedules`]); sums to ~1.
    pub fractions: Vec<f64>,
    /// Number of jobs completed.
    pub completed: u64,
}

/// Runs the event-driven FCFS maximum-throughput experiment.
///
/// `jobs` equal-probability jobs of each type are processed by a fully
/// loaded machine: whenever a job finishes, the next job from the random
/// arrival order takes its slot. Returns throughput and per-coschedule time
/// fractions.
///
/// # Errors
///
/// Returns [`SymbiosisError::InvalidParameter`] if `jobs` is smaller than
/// the number of contexts.
///
/// # Examples
///
/// ```
/// use symbiosis::{fcfs_throughput, JobSize, WorkloadRates};
///
/// let rates = WorkloadRates::build(2, 2, |s| {
///     s.counts().iter().map(|&c| c as f64 * 0.5).collect()
/// })?;
/// let out = fcfs_throughput(&rates, 20_000, JobSize::Deterministic, 42)?;
/// assert!((out.throughput - 1.0).abs() < 0.01); // insensitive equal jobs
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub fn fcfs_throughput(
    rates: &WorkloadRates,
    jobs: u64,
    sizes: JobSize,
    seed: u64,
) -> Result<FcfsOutcome, SymbiosisError> {
    let k = rates.contexts();
    if jobs < k as u64 {
        return Err(SymbiosisError::InvalidParameter(format!(
            "need at least {k} jobs to load the machine, got {jobs}"
        )));
    }
    let n = rates.num_types();
    let mut rng = SplitMix64::new(seed);
    let draw_job = |rng: &mut SplitMix64| {
        let ty = rng.next_range(n as u64) as usize;
        let work = match sizes {
            JobSize::Deterministic => 1.0,
            JobSize::Exponential => rng.next_exp(1.0),
        };
        (ty, work)
    };

    // Running jobs: (type, remaining work) per slot.
    let mut slots: Vec<(usize, f64)> = (0..k).map(|_| draw_job(&mut rng)).collect();
    let mut started = k as u64;
    let mut completed = 0u64;
    let mut now = 0.0f64;
    let mut work_done = 0.0f64;
    let n_states = rates.coschedules().len();
    let mut fractions = vec![0.0f64; n_states];

    // Precompute the full state-transition table: completing one `from` job
    // and admitting one `to` job maps state `si` to `transitions[(si * n +
    // from) * n + to]`. The hot loop then never rebuilds count vectors or
    // hashes coschedule keys per completion (formerly an O(K) rebuild plus
    // a heap-allocating table lookup for every finished job).
    const NO_STATE: u32 = u32::MAX;
    let mut transitions = vec![NO_STATE; n_states * n * n];
    for (si, s) in rates.coschedules().iter().enumerate() {
        for from in 0..n {
            if s.count(from) == 0 {
                continue;
            }
            for to in 0..n {
                let next = s.replace(from, to).expect("type `from` present");
                let ni = rates
                    .index_of(&next)
                    .expect("full coschedule must be in the table");
                transitions[(si * n + from) * n + to] = ni as u32;
            }
        }
    }

    // Cache per-job rates as a dense [state][type] matrix for the hot loop.
    let per_job: Vec<f64> = (0..n_states)
        .flat_map(|si| (0..n).map(move |ty| rates.per_job_rate(si, ty)))
        .collect();

    // Current coschedule index, maintained incrementally via transitions.
    let mut si = {
        let mut counts = vec![0u32; n];
        for &(ty, _) in &slots {
            counts[ty] += 1;
        }
        rates
            .index_of(&crate::Coschedule::from_counts(counts))
            .expect("full coschedule must be in the table")
    };

    while completed < jobs {
        // Per-job rates in the current coschedule.
        // Advance time until the earliest completion.
        let row = &per_job[si * n..(si + 1) * n];
        let mut dt = f64::INFINITY;
        for &(ty, remaining) in &slots {
            let r = row[ty];
            debug_assert!(r > 0.0, "running job must make progress");
            dt = dt.min(remaining / r);
        }
        debug_assert!(dt.is_finite());
        now += dt;
        fractions[si] += dt;
        // Progress all jobs; replace those that finish.
        let mut finished_any = false;
        for slot in slots.iter_mut() {
            let r = row[slot.0];
            let progress = r * dt;
            work_done += progress.min(slot.1);
            slot.1 -= progress;
            if slot.1 <= 1e-12 {
                finished_any = true;
                completed += 1;
                let (ty, work) = draw_job(&mut rng);
                si = transitions[(si * n + slot.0) * n + ty] as usize;
                debug_assert_ne!(si, NO_STATE as usize, "transition must exist");
                *slot = (ty, work);
                started += 1;
            }
        }
        debug_assert!(finished_any, "time step must finish at least one job");
    }
    let _ = started;
    for f in &mut fractions {
        *f /= now;
    }
    Ok(FcfsOutcome {
        throughput: work_done / now,
        fractions,
        completed,
    })
}

/// Largest state count solved by the dense LU path; larger chains go
/// through the sparse CSR Gauss–Seidel solver. The default keeps every
/// historical scenario (35 states at N = 4, 330 at N = 8 on K = 4) on the
/// bitwise-stable dense path while N = 12 on K = 4 (1365 states) and
/// beyond stream through the sparse one.
pub const DEFAULT_MARKOV_DENSE_LIMIT: usize = 512;

/// Largest state count solved by *sequential* Gauss–Seidel on the sparse
/// path; larger chains switch to the accelerated solver (adaptive-omega
/// SOR over a multi-colored sweep, fanned out across threads). The default
/// keeps every historical sparse scenario (1365 states at N = 12 on K = 4)
/// bitwise identical to the sequential sweeps while the big-machine chains
/// (75 582 states at N = 12 / K = 8, 352 716 at K = 10) take the fast
/// path. Same dispatch pattern as [`DEFAULT_MARKOV_DENSE_LIMIT`]: `0`
/// forces acceleration, [`usize::MAX`] forces sequential Gauss–Seidel.
pub const DEFAULT_MARKOV_ACCEL_LIMIT: usize = 4096;

/// Exact FCFS throughput under exponential job sizes via the stationary
/// distribution of the coschedule Markov chain.
///
/// In state `s`, jobs of type `b` complete with total rate `r_b(s)` (work
/// is exponential with mean 1); the finished job is replaced by a uniform
/// random type. The stationary distribution `pi` of this CTMC gives the
/// long-run throughput `sum_s pi(s) it(s)`.
///
/// Chains up to [`DEFAULT_MARKOV_DENSE_LIMIT`] states are solved by dense
/// LU (bitwise identical to pre-sparse releases); larger chains build the
/// generator in CSR form — each state has at most `N * K` outgoing
/// transitions, so the matrix is ~99.9% sparse at scale — and iterate
/// Gauss–Seidel to a residual tolerance
/// ([`fcfs_throughput_markov_with`] picks the threshold explicitly).
///
/// # Errors
///
/// Returns [`SymbiosisError::InvalidParameter`] if the chain's linear
/// system is singular or the iteration fails to converge (cannot happen
/// for valid rate tables).
pub fn fcfs_throughput_markov(rates: &WorkloadRates) -> Result<FcfsOutcome, SymbiosisError> {
    fcfs_throughput_markov_with(rates, DEFAULT_MARKOV_DENSE_LIMIT)
}

/// [`fcfs_throughput_markov`] with an explicit dense-solver threshold:
/// chains with more than `dense_limit` states go through the sparse
/// path. `0` forces the sparse path, `usize::MAX` the dense one. The
/// sparse path itself dispatches at [`DEFAULT_MARKOV_ACCEL_LIMIT`] with
/// auto-detected threads ([`fcfs_throughput_markov_tuned`] exposes both
/// knobs).
///
/// # Errors
///
/// Same conditions as [`fcfs_throughput_markov`].
pub fn fcfs_throughput_markov_with(
    rates: &WorkloadRates,
    dense_limit: usize,
) -> Result<FcfsOutcome, SymbiosisError> {
    fcfs_throughput_markov_tuned(rates, dense_limit, DEFAULT_MARKOV_ACCEL_LIMIT, 0)
}

/// The fully tuned Markov dispatch: chains of up to `dense_limit` states
/// solve by dense LU, up to `accel_limit` by sequential Gauss–Seidel
/// (bitwise identical to pre-acceleration releases), and beyond that by
/// the accelerated adaptive-SOR multi-colored sweep across `threads` OS
/// threads (`0` auto-detects; a resolved single worker runs the
/// natural-order sequential SOR sweep instead, which converges faster
/// than a one-thread colored sweep).
///
/// # Errors
///
/// Same conditions as [`fcfs_throughput_markov`].
pub fn fcfs_throughput_markov_tuned(
    rates: &WorkloadRates,
    dense_limit: usize,
    accel_limit: usize,
    threads: usize,
) -> Result<FcfsOutcome, SymbiosisError> {
    let n_s = rates.coschedules().len();
    let _span = obs::span!("fcfs.markov_solve");
    let pi = if n_s <= dense_limit {
        obs::count!("solver.markov.dense", 1);
        markov_stationary_dense(rates)?
    } else {
        markov_stationary_sparse(rates, accel_limit, threads)?
    };
    let throughput = pi
        .iter()
        .enumerate()
        .map(|(si, &p)| p * rates.instantaneous_throughput(si))
        .sum();
    Ok(FcfsOutcome {
        throughput,
        fractions: pi,
        completed: 0,
    })
}

/// The historical dense path: materialise `Q^T`, replace one equation by
/// the normalisation, LU-solve.
fn markov_stationary_dense(rates: &WorkloadRates) -> Result<Vec<f64>, SymbiosisError> {
    let coschedules = rates.coschedules();
    let n_s = coschedules.len();
    let n = rates.num_types() as f64;

    // Build the generator Q (row = from, col = to), then solve pi Q = 0
    // with sum(pi) = 1. We work with Q^T pi^T = 0 and replace the last
    // equation by the normalisation.
    let mut qt = Matrix::zeros(n_s, n_s);
    for (from, s) in coschedules.iter().enumerate() {
        let mut total_out = 0.0;
        for b in 0..rates.num_types() {
            if s.count(b) == 0 {
                continue;
            }
            let rate_b = rates.rate(from, b);
            total_out += rate_b;
            for c in 0..rates.num_types() {
                let to_sched = s.replace(b, c).expect("type b present");
                let to = rates
                    .index_of(&to_sched)
                    .expect("replacement coschedule must be in the table");
                qt[(to, from)] += rate_b / n;
            }
        }
        qt[(from, from)] -= total_out;
    }
    // Replace the last row with the normalisation sum(pi) = 1.
    let mut rhs = vec![0.0; n_s];
    for j in 0..n_s {
        qt[(n_s - 1, j)] = 1.0;
    }
    rhs[n_s - 1] = 1.0;
    linsys::solve(&qt, &rhs)
        .map_err(|e| SymbiosisError::InvalidParameter(format!("markov chain solve: {e}")))
}

/// Applies `visit(from, to, rate)` to every off-diagonal transition of the
/// coschedule chain (a type-`b` completion replaced by a different type
/// `c`; `b -> b` replacements keep the state and cancel out of the balance
/// equations). Allocation-free: a state's whole neighbor row comes from
/// [`crate::CoscheduleRank::replace_ranks`] in O(N) incremental rank deltas —
/// the enumeration index *is* the rank, so `from` doubles as the base.
fn for_each_markov_transition<F: FnMut(usize, usize, f64)>(rates: &WorkloadRates, mut visit: F) {
    let n = rates.num_types();
    let nf = n as f64;
    let rank = rates.rank_table();
    for (from, s) in rates.coschedules().iter().enumerate() {
        for b in 0..n {
            if s.count(b) == 0 {
                continue;
            }
            let per_target = rates.rate(from, b) / nf;
            rank.replace_ranks(s.counts(), from, b, |_, to| visit(from, to, per_target));
        }
    }
}

/// Builds the sparse form of the coschedule Markov chain: the
/// *incoming*-transition CSR (row `j` lists `(i, q_ij)`) and each state's
/// off-diagonal outflow, the inputs every `lp::sparse` stationary solver
/// takes. Public so benches and parity tests can time/solve the chain with
/// an explicit solver choice; the dispatching entry points remain
/// [`fcfs_throughput_markov`] and friends.
///
/// Self-loops (a completion replaced by the same type) cancel from both
/// sides of the balance equations, hence the `(n - 1) / n` outflow factor.
pub fn markov_chain(rates: &WorkloadRates) -> (lp::Csr, Vec<f64>) {
    let n_s = rates.coschedules().len();
    let n = rates.num_types() as f64;
    let mut builder = lp::sparse::CsrBuilder::new(n_s, n_s);
    // Structural pass: derive every transition target's multiset rank
    // exactly once, recording it for the value pass — the rank arithmetic
    // dominates assembly at scale, so it must not run per pass.
    let mut targets: Vec<u32> = Vec::new();
    for_each_markov_transition(rates, |_, to, _| {
        builder.count(to);
        targets.push(u32::try_from(to).expect("state count fits u32"));
    });
    builder.finish_counts();
    // Value pass: replay the recorded targets in the same traversal order
    // (state-major, then present type, then n - 1 replacement types).
    let mut cursor = 0usize;
    for (from, s) in rates.coschedules().iter().enumerate() {
        for b in 0..rates.num_types() {
            if s.count(b) == 0 {
                continue;
            }
            let per_target = rates.rate(from, b) / n;
            for _ in 0..rates.num_types() - 1 {
                builder.push(targets[cursor] as usize, from, per_target);
                cursor += 1;
            }
        }
    }
    debug_assert_eq!(cursor, targets.len(), "value pass must replay every target");
    let inflow = builder.build();
    let outflow: Vec<f64> = (0..n_s)
        .map(|from| {
            let total: f64 = (0..rates.num_types()).map(|b| rates.rate(from, b)).sum();
            total * (n - 1.0) / n
        })
        .collect();
    (inflow, outflow)
}

/// A closed-form proper coloring of the coschedule chain: color a state by
/// its count-weighted type sum mod N. Every transition moves one job from
/// type `b` to a *different* type `c`, shifting the weighted sum by
/// `c - b ≠ 0 (mod N)`, so adjacent states always change color — exactly N
/// colors, each class ~1/N of the chain, with no graph traversal. (The
/// natural generalisation of a red/black partition to this lattice.)
pub fn markov_coloring(rates: &WorkloadRates) -> Vec<u32> {
    let n = rates.num_types() as u64;
    rates
        .coschedules()
        .iter()
        .map(|s| {
            let weighted: u64 = s
                .counts()
                .iter()
                .enumerate()
                .map(|(b, &c)| b as u64 * c as u64)
                .sum();
            (weighted % n) as u32
        })
        .collect()
}

/// The sparse path: the CSR chain of [`markov_chain`] solved sequentially
/// (Gauss–Seidel) up to `accel_limit` states and by adaptive-omega SOR
/// beyond it — natural-order on a single worker, the multi-colored
/// parallel sweep when more than one thread is available.
fn markov_stationary_sparse(
    rates: &WorkloadRates,
    accel_limit: usize,
    threads: usize,
) -> Result<Vec<f64>, SymbiosisError> {
    let n_s = rates.coschedules().len();
    let (inflow, outflow) = markov_chain(rates);
    let solved = if n_s <= accel_limit {
        obs::count!("solver.markov.gauss_seidel", 1);
        lp::sparse::stationary_gauss_seidel(&inflow, &outflow, 1e-12, 20_000)
    } else {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        if threads <= 1 {
            // A lone worker gains nothing from the colored sweep, and the
            // class-major update order converges slower than the natural
            // sweep — sequential adaptive SOR is strictly better here.
            obs::count!("solver.markov.sor", 1);
            lp::sparse::stationary_sor(&inflow, &outflow, 1e-12, 20_000)
        } else {
            obs::count!("solver.markov.multicolor", 1);
            let colors = markov_coloring(rates);
            lp::sparse::stationary_multicolor(&inflow, &outflow, &colors, 1e-12, 20_000, threads)
        }
    };
    solved.map_err(|e| SymbiosisError::InvalidParameter(format!("sparse markov solve: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insensitive(per_job: &'static [f64], contexts: usize) -> WorkloadRates {
        WorkloadRates::build(per_job.len(), contexts, move |s| {
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, &r)| c as f64 * r)
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn insensitive_equal_jobs_reach_nominal_throughput() {
        let rates = insensitive(&[0.5, 0.5], 2);
        let out = fcfs_throughput(&rates, 20_000, JobSize::Deterministic, 1).unwrap();
        assert!((out.throughput - 1.0).abs() < 0.01, "{}", out.throughput);
    }

    #[test]
    fn fractions_sum_to_one() {
        let rates = insensitive(&[0.8, 0.4, 0.2], 3);
        let out = fcfs_throughput(&rates, 5_000, JobSize::Deterministic, 7).unwrap();
        let total: f64 = out.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_seeds_reproduce() {
        let rates = insensitive(&[0.8, 0.4], 2);
        let a = fcfs_throughput(&rates, 2_000, JobSize::Exponential, 3).unwrap();
        let b = fcfs_throughput(&rates, 2_000, JobSize::Exponential, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_few_jobs_rejected() {
        let rates = insensitive(&[1.0, 1.0], 2);
        assert!(matches!(
            fcfs_throughput(&rates, 1, JobSize::Deterministic, 0),
            Err(SymbiosisError::InvalidParameter(_))
        ));
    }

    #[test]
    fn markov_matches_simulation_for_exponential_sizes() {
        // Symbiosis-sensitive table: mixed coschedules run faster.
        let rates = WorkloadRates::build(2, 2, |s| {
            let boost = if s.heterogeneity() == 2 { 1.3 } else { 1.0 };
            s.counts().iter().map(|&c| c as f64 * 0.5 * boost).collect()
        })
        .unwrap();
        let markov = fcfs_throughput_markov(&rates).unwrap();
        let sim = fcfs_throughput(&rates, 200_000, JobSize::Exponential, 11).unwrap();
        assert!(
            (markov.throughput - sim.throughput).abs() < 0.01,
            "markov {} vs sim {}",
            markov.throughput,
            sim.throughput
        );
    }

    #[test]
    fn markov_stationary_distribution_is_proper() {
        let rates = insensitive(&[0.9, 0.6, 0.3], 3);
        let out = fcfs_throughput_markov(&rates).unwrap();
        let total: f64 = out.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
        for &p in &out.fractions {
            assert!(p > -1e-10, "stationary probabilities must be non-negative");
        }
    }

    #[test]
    fn fcfs_lies_between_lp_bounds() {
        use crate::optimal::{optimal_schedule, Objective};
        let rates = WorkloadRates::build(3, 3, |s| {
            let het = s.heterogeneity() as f64;
            let per_job = [1.0, 0.7, 0.4];
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.6 + 0.13 * het))
                .collect()
        })
        .unwrap();
        let best = optimal_schedule(&rates, Objective::MaxThroughput).unwrap();
        let worst = optimal_schedule(&rates, Objective::MinThroughput).unwrap();
        let fcfs = fcfs_throughput(&rates, 30_000, JobSize::Deterministic, 5).unwrap();
        assert!(
            fcfs.throughput <= best.throughput + 1e-6,
            "fcfs {} > best {}",
            fcfs.throughput,
            best.throughput
        );
        assert!(
            fcfs.throughput >= worst.throughput - 1e-6,
            "fcfs {} < worst {}",
            fcfs.throughput,
            worst.throughput
        );
    }

    #[test]
    fn sparse_markov_matches_dense_lu() {
        // Symbiosis-sensitive 3-type table on 3 contexts (10 states).
        let rates = WorkloadRates::build(3, 3, |s| {
            let per_job = [1.0, 0.7, 0.4];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.6 + 0.13 * het))
                .collect()
        })
        .unwrap();
        let dense = fcfs_throughput_markov_with(&rates, usize::MAX).unwrap();
        let sparse = fcfs_throughput_markov_with(&rates, 0).unwrap();
        assert!(
            (dense.throughput - sparse.throughput).abs() < 1e-9,
            "dense {} vs sparse {}",
            dense.throughput,
            sparse.throughput
        );
        for (d, s) in dense.fractions.iter().zip(&sparse.fractions) {
            assert!((d - s).abs() < 1e-8, "pi entries differ: {d} vs {s}");
        }
    }

    #[test]
    fn default_markov_threshold_keeps_historical_sizes_dense() {
        use crate::coschedule::CoscheduleIter;
        assert!(
            CoscheduleIter::count_total(8, 4) <= DEFAULT_MARKOV_DENSE_LIMIT,
            "N=8/K=4 stays dense"
        );
        assert!(
            CoscheduleIter::count_total(12, 4) > DEFAULT_MARKOV_DENSE_LIMIT,
            "N=12/K=4 goes sparse"
        );
    }

    #[test]
    fn homogeneous_single_type_gives_rate_k() {
        let rates = insensitive(&[0.25], 4);
        let out = fcfs_throughput(&rates, 1_000, JobSize::Deterministic, 2).unwrap();
        assert!((out.throughput - 1.0).abs() < 1e-9);
        let markov = fcfs_throughput_markov(&rates).unwrap();
        assert!((markov.throughput - 1.0).abs() < 1e-9);
    }
}
