//! Spread statistics shared by the paper's figures.

/// Min/mean/max summary of a set of values, with relative deviations.
///
/// The paper reports bars like "+23% / −14% around the average" (Figure 1)
/// and defines *variability* as `(max − min) / mean`.
///
/// # Examples
///
/// ```
/// use symbiosis::metrics::Spread;
///
/// let s = Spread::from_values([0.8, 1.0, 1.2]).unwrap();
/// assert!((s.mean - 1.0).abs() < 1e-12);
/// assert!((s.rel_max() - 0.2).abs() < 1e-12);
/// assert!((s.rel_min() + 0.2).abs() < 1e-12);
/// assert!((s.variability() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Smallest value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
}

impl Spread {
    /// Summarises a non-empty collection of finite values.
    ///
    /// Returns `None` if the iterator is empty or any value is non-finite.
    pub fn from_values<I>(values: I) -> Option<Spread>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            if !v.is_finite() {
                return None;
            }
            min = min.min(v);
            max = max.max(v);
            sum += v;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some(Spread {
            min,
            mean: sum / count as f64,
            max,
        })
    }

    /// Relative excursion of the maximum above the mean (`+23%` -> `0.23`).
    pub fn rel_max(&self) -> f64 {
        self.max / self.mean - 1.0
    }

    /// Relative excursion of the minimum below the mean (`-14%` -> `-0.14`).
    pub fn rel_min(&self) -> f64 {
        self.min / self.mean - 1.0
    }

    /// The paper's variability: `(max - min) / mean`.
    pub fn variability(&self) -> f64 {
        (self.max - self.min) / self.mean
    }
}

/// Averages an iterator of spreads component-wise (used to aggregate
/// per-workload spreads into the "avg best"/"avg worst" bars of Figure 1).
///
/// Returns `None` on an empty iterator.
pub fn mean_spread<I>(spreads: I) -> Option<Spread>
where
    I: IntoIterator<Item = Spread>,
{
    let mut min = 0.0;
    let mut mean = 0.0;
    let mut max = 0.0;
    let mut count = 0usize;
    for s in spreads {
        min += s.min;
        mean += s.mean;
        max += s.max;
        count += 1;
    }
    if count == 0 {
        return None;
    }
    let n = count as f64;
    Some(Spread {
        min: min / n,
        mean: mean / n,
        max: max / n,
    })
}

/// Arithmetic mean of an iterator; `None` when empty.
pub fn mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// Ordinary least-squares slope of `y = a * x` through the origin.
///
/// Used for the Figure 2 trend lines (FCFS-vs-worst against
/// optimal-vs-worst are ratios around 1, fitted as `y - 1 = a (x - 1)`).
///
/// Returns `None` if fewer than one point or all `x` are ~0.
pub fn slope_through_origin(points: &[(f64, f64)]) -> Option<f64> {
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    if points.is_empty() || sxx < 1e-300 {
        None
    } else {
        Some(sxy / sxx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_of_singleton() {
        let s = Spread::from_values([2.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.variability(), 0.0);
    }

    #[test]
    fn spread_empty_is_none() {
        assert!(Spread::from_values(std::iter::empty()).is_none());
    }

    #[test]
    fn spread_rejects_nan() {
        assert!(Spread::from_values([1.0, f64::NAN]).is_none());
        assert!(Spread::from_values([1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn relative_excursions() {
        let s = Spread::from_values([1.0, 2.0, 3.0]).unwrap();
        assert!((s.rel_max() - 0.5).abs() < 1e-12);
        assert!((s.rel_min() + 0.5).abs() < 1e-12);
        assert!((s.variability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_spread_averages_components() {
        let a = Spread {
            min: 0.0,
            mean: 1.0,
            max: 2.0,
        };
        let b = Spread {
            min: 2.0,
            mean: 3.0,
            max: 4.0,
        };
        let m = mean_spread([a, b]).unwrap();
        assert_eq!(m.min, 1.0);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.max, 3.0);
        assert!(mean_spread(std::iter::empty()).is_none());
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean([1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(std::iter::empty()), None);
    }

    #[test]
    fn slope_fits_exact_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 0.7 * i as f64)).collect();
        let a = slope_through_origin(&pts).unwrap();
        assert!((a - 0.7).abs() < 1e-12);
        assert!(slope_through_origin(&[]).is_none());
    }
}
