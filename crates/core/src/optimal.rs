//! Optimal (and worst) average throughput via linear programming —
//! Section IV of the paper.
//!
//! Let `x_s` be the fraction of time the machine spends in coschedule `s`.
//! The average throughput is `sum_s x_s * it(s)`; the constraints are
//! `x_s >= 0`, `sum_s x_s = 1`, and — because every job type contributes the
//! same total amount of work — for every type `b > 0`:
//! `sum_s x_s * r_b(s) = sum_s x_s * r_0(s)` (Equation 5).
//!
//! Maximising gives the theoretically best scheduler; minimising gives the
//! worst. A fundamental property of basic LP solutions bounds the number of
//! coschedules with non-zero time fraction by the number of equality
//! constraints, i.e. by the number of job types.

use lp::{LinearProgram, Relation};

use crate::error::SymbiosisError;
use crate::rates::WorkloadRates;

/// Optimisation direction for the scheduling LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// The theoretically best scheduler (paper's "optimal").
    MaxThroughput,
    /// The theoretically worst scheduler (used for normalisation in
    /// Figures 2, 3 and 6).
    MinThroughput,
}

/// A solved schedule: throughput plus the time fraction of each coschedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Long-term average throughput in weighted instructions per cycle.
    pub throughput: f64,
    /// Time fraction per coschedule, aligned with
    /// [`WorkloadRates::coschedules`]; sums to 1.
    pub fractions: Vec<f64>,
}

impl Schedule {
    /// Indices of coschedules with time fraction above `tol`.
    pub fn selected(&self, tol: f64) -> Vec<usize> {
        self.fractions
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > tol)
            .map(|(i, _)| i)
            .collect()
    }

    /// Work executed per unit time for job type `b` under this schedule.
    pub fn work_rate(&self, rates: &WorkloadRates, b: usize) -> f64 {
        self.fractions
            .iter()
            .enumerate()
            .map(|(si, &x)| x * rates.rate(si, b))
            .sum()
    }
}

/// Solves the Section IV scheduling LP for the given objective.
///
/// # Errors
///
/// Returns [`SymbiosisError::Lp`] if the LP is infeasible (cannot happen for
/// valid rate tables: homogeneous coschedules always balance work) or
/// numerically fails.
///
/// # Examples
///
/// ```
/// use symbiosis::{optimal_schedule, Objective, WorkloadRates};
///
/// let rates = WorkloadRates::build(2, 2, |s| {
///     // Type A runs at 0.8 per job, type B at 0.4; no interference.
///     let per_job = [0.8, 0.4];
///     s.counts().iter().zip(per_job).map(|(&c, r)| c as f64 * r).collect()
/// })?;
/// let best = optimal_schedule(&rates, Objective::MaxThroughput)?;
/// let worst = optimal_schedule(&rates, Objective::MinThroughput)?;
/// assert!(best.throughput >= worst.throughput);
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub fn optimal_schedule(
    rates: &WorkloadRates,
    objective: Objective,
) -> Result<Schedule, SymbiosisError> {
    let coschedules = rates.coschedules();
    let n_s = coschedules.len();
    let n_types = rates.num_types();

    let it: Vec<f64> = (0..n_s)
        .map(|si| rates.instantaneous_throughput(si))
        .collect();
    let mut program = match objective {
        Objective::MaxThroughput => LinearProgram::maximize(&it),
        Objective::MinThroughput => LinearProgram::minimize(&it),
    };
    // Time fractions form a distribution.
    program.constraint(&vec![1.0; n_s], Relation::Eq, 1.0);
    // Equal total work per job type (Equation 5): r_b - r_0 balances.
    for b in 1..n_types {
        let row: Vec<f64> = (0..n_s)
            .map(|si| rates.rate(si, b) - rates.rate(si, 0))
            .collect();
        program.constraint(&row, Relation::Eq, 0.0);
    }
    let solution = program.solve()?;
    Ok(Schedule {
        throughput: solution.objective,
        fractions: solution.values,
    })
}

/// Convenience: both LP bounds at once.
///
/// # Errors
///
/// Propagates [`SymbiosisError`] from either solve.
pub fn throughput_bounds(rates: &WorkloadRates) -> Result<(Schedule, Schedule), SymbiosisError> {
    Ok((
        optimal_schedule(rates, Objective::MinThroughput)?,
        optimal_schedule(rates, Objective::MaxThroughput)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Insensitive jobs: per-job rate independent of co-runners.
    fn insensitive(per_job: &'static [f64], contexts: usize) -> WorkloadRates {
        WorkloadRates::build(per_job.len(), contexts, move |s| {
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, &r)| c as f64 * r)
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn insensitive_equal_jobs_fix_throughput() {
        // All types identical and insensitive: every schedule achieves the
        // same throughput, so max == min == K * rate.
        let rates = insensitive(&[0.5, 0.5, 0.5, 0.5], 4);
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!((best.throughput - 2.0).abs() < 1e-7);
        assert!((worst.throughput - 2.0).abs() < 1e-7);
    }

    #[test]
    fn insensitive_unequal_jobs_follow_harmonic_formula() {
        // Linear-bottleneck analysis (Section V-C1b): for insensitive jobs
        // the average throughput is N / sum_b (1/(K*rate_b)) and is
        // scheduler independent. With rates 0.8 and 0.4 on K=2:
        // AT = 2 / (1/1.6 + 1/0.8) = 1.0666...
        let rates = insensitive(&[0.8, 0.4], 2);
        let (worst, best) = throughput_bounds(&rates).unwrap();
        let expected = 2.0 / (1.0 / 1.6 + 1.0 / 0.8);
        assert!(
            (best.throughput - expected).abs() < 1e-7,
            "{}",
            best.throughput
        );
        assert!((worst.throughput - expected).abs() < 1e-7);
    }

    #[test]
    fn symbiotic_pairing_is_exploited() {
        // Two types on 2 contexts. Mixed coschedule AB runs at full speed
        // (no interference); homogeneous pairs thrash (half speed each).
        let rates = WorkloadRates::build(2, 2, |s| {
            let c = s.counts();
            if c[0] == 1 && c[1] == 1 {
                vec![1.0, 1.0]
            } else {
                c.iter().map(|&x| x as f64 * 0.5).collect()
            }
        })
        .unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        // Best: always run AB at it = 2. Worst: alternate AA/BB at it = 1.
        assert!((best.throughput - 2.0).abs() < 1e-7);
        assert!((worst.throughput - 1.0).abs() < 1e-7);
        // The optimal schedule indeed selects only AB.
        let ab = rates
            .index_of(&crate::Coschedule::from_counts(vec![1, 1]))
            .unwrap();
        assert!((best.fractions[ab] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn fractions_form_distribution_and_balance_work() {
        let rates = WorkloadRates::build(3, 3, |s| {
            let per_job = [1.0, 0.6, 0.3];
            let k = s.size() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (1.0 - 0.05 * (k - 1.0)))
                .collect()
        })
        .unwrap();
        let best = optimal_schedule(&rates, Objective::MaxThroughput).unwrap();
        let total: f64 = best.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
        let w0 = best.work_rate(&rates, 0);
        for b in 1..3 {
            assert!(
                (best.work_rate(&rates, b) - w0).abs() < 1e-6,
                "work must balance across types"
            );
        }
    }

    #[test]
    fn support_bounded_by_type_count() {
        // Section IV: an optimal basic solution selects at most N coschedules.
        let rates = WorkloadRates::build(4, 4, |s| {
            let per_job = [1.1, 0.8, 0.5, 0.3];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.7 + 0.1 * het))
                .collect()
        })
        .unwrap();
        for obj in [Objective::MaxThroughput, Objective::MinThroughput] {
            let sched = optimal_schedule(&rates, obj).unwrap();
            assert!(
                sched.selected(1e-7).len() <= 4,
                "basic solution uses at most N coschedules"
            );
        }
    }

    #[test]
    fn max_dominates_min_on_random_like_tables() {
        let rates = WorkloadRates::build(4, 4, |s| {
            // Pseudo-irregular but deterministic rates.
            s.counts()
                .iter()
                .enumerate()
                .map(|(b, &c)| {
                    if c == 0 {
                        0.0
                    } else {
                        let x = (si_hash(s.counts(), b) % 100) as f64 / 100.0;
                        c as f64 * (0.2 + 0.6 * x) / s.size() as f64
                    }
                })
                .collect()
        })
        .unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!(best.throughput >= worst.throughput - 1e-9);
    }

    fn si_hash(counts: &[u32], b: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &c in counts {
            h = (h ^ c as u64).wrapping_mul(0x100_0000_01b3);
        }
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    }

    #[test]
    fn single_type_workload_has_unique_throughput() {
        let rates = WorkloadRates::build(1, 4, |s| vec![s.size() as f64 * 0.25]).unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!((best.throughput - 1.0).abs() < 1e-9);
        assert!((worst.throughput - 1.0).abs() < 1e-9);
    }
}
