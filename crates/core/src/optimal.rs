//! Optimal (and worst) average throughput via linear programming —
//! Section IV of the paper.
//!
//! Let `x_s` be the fraction of time the machine spends in coschedule `s`.
//! The average throughput is `sum_s x_s * it(s)`; the constraints are
//! `x_s >= 0`, `sum_s x_s = 1`, and — because every job type contributes the
//! same total amount of work — for every type `b > 0`:
//! `sum_s x_s * r_b(s) = sum_s x_s * r_0(s)` (Equation 5).
//!
//! Maximising gives the theoretically best scheduler; minimising gives the
//! worst. A fundamental property of basic LP solutions bounds the number of
//! coschedules with non-zero time fraction by the number of equality
//! constraints, i.e. by the number of job types.
//!
//! # Solver selection
//!
//! The LP has one column per coschedule but only `N` rows. Up to
//! [`DEFAULT_LP_DENSE_LIMIT`] coschedules it is solved on the dense
//! two-phase tableau ([`lp::LinearProgram`]), bitwise identical to the
//! historical path; beyond that — N = 12 on K = 8 contexts is 75 582
//! columns — [`ScheduleLp`] switches to revised simplex with lazy column
//! pricing ([`lp::revised`]): the master holds only the rows and basis,
//! and candidate coschedule columns are priced on demand from the rate
//! table. The homogeneous coschedules form a natural feasible starting
//! basis. Both objectives share one [`ScheduleLp`] (the `it` vector and
//! balance rows are built once).

use lp::revised::{solve_colgen, BasisColumn, ColGenOptions, PricedColumn, SparseCol};
use lp::{LinearProgram, Relation, SolveError};

use crate::coschedule::Coschedule;
use crate::error::SymbiosisError;
use crate::rates::WorkloadRates;

/// Largest coschedule count solved on the dense tableau; larger tables go
/// through column generation. The default keeps every historical scenario
/// (N <= 8 on K = 4 is 330 coschedules; combos of 12 benchmarks at K = 4
/// are 1365) on the bitwise-stable dense path.
pub const DEFAULT_LP_DENSE_LIMIT: usize = 2048;

/// Optimisation direction for the scheduling LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// The theoretically best scheduler (paper's "optimal").
    MaxThroughput,
    /// The theoretically worst scheduler (used for normalisation in
    /// Figures 2, 3 and 6).
    MinThroughput,
}

/// A solved schedule: throughput plus the time fraction of each coschedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Long-term average throughput in weighted instructions per cycle.
    pub throughput: f64,
    /// Time fraction per coschedule, aligned with
    /// [`WorkloadRates::coschedules`]; sums to 1.
    pub fractions: Vec<f64>,
}

impl Schedule {
    /// Indices of coschedules with time fraction above `tol`.
    pub fn selected(&self, tol: f64) -> Vec<usize> {
        self.fractions
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > tol)
            .map(|(i, _)| i)
            .collect()
    }

    /// Work executed per unit time for job type `b` under this schedule.
    pub fn work_rate(&self, rates: &WorkloadRates, b: usize) -> f64 {
        self.fractions
            .iter()
            .enumerate()
            .map(|(si, &x)| x * rates.rate(si, b))
            .sum()
    }
}

/// The Section IV scheduling LP with its column data built once, solvable
/// for either [`Objective`] — the shared core behind [`optimal_schedule`],
/// [`throughput_bounds`] and the `session` crate (which previously rebuilt
/// the whole program per objective).
///
/// # Examples
///
/// ```
/// use symbiosis::{Objective, ScheduleLp, WorkloadRates};
///
/// let rates = WorkloadRates::build(2, 2, |s| {
///     s.counts().iter().map(|&c| c as f64 * 0.5).collect()
/// })?;
/// let lp = ScheduleLp::new(&rates);
/// let best = lp.solve(Objective::MaxThroughput)?;
/// let worst = lp.solve(Objective::MinThroughput)?;
/// assert!(best.throughput >= worst.throughput);
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub struct ScheduleLp<'a> {
    rates: &'a WorkloadRates,
    /// Instantaneous throughput per coschedule — the objective row.
    it: Vec<f64>,
    /// Dense balance rows `r_b(s) - r_0(s)` (one per type `b > 0`), built
    /// only when the dense path applies.
    balance: Option<Vec<Vec<f64>>>,
    dense_limit: usize,
}

impl<'a> ScheduleLp<'a> {
    /// Prepares the LP with the default solver threshold
    /// ([`DEFAULT_LP_DENSE_LIMIT`]).
    pub fn new(rates: &'a WorkloadRates) -> Self {
        Self::with_dense_limit(rates, DEFAULT_LP_DENSE_LIMIT)
    }

    /// Prepares the LP with an explicit dense-tableau threshold: tables
    /// with more than `dense_limit` coschedules are solved by column
    /// generation. `0` forces column generation, `usize::MAX` forces the
    /// dense tableau.
    pub fn with_dense_limit(rates: &'a WorkloadRates, dense_limit: usize) -> Self {
        let n_s = rates.coschedules().len();
        let it: Vec<f64> = (0..n_s)
            .map(|si| rates.instantaneous_throughput(si))
            .collect();
        let balance = if n_s <= dense_limit {
            let n_types = rates.num_types();
            Some(
                (1..n_types)
                    .map(|b| {
                        (0..n_s)
                            .map(|si| rates.rate(si, b) - rates.rate(si, 0))
                            .collect()
                    })
                    .collect(),
            )
        } else {
            None
        };
        ScheduleLp {
            rates,
            it,
            balance,
            dense_limit,
        }
    }

    /// Whether solves go through the dense tableau (`true`) or column
    /// generation (`false`).
    pub fn is_dense(&self) -> bool {
        self.rates.coschedules().len() <= self.dense_limit
    }

    /// Solves for one objective.
    ///
    /// # Errors
    ///
    /// Returns [`SymbiosisError::Lp`] if the LP is infeasible (cannot
    /// happen for valid rate tables: homogeneous coschedules always
    /// balance work) or numerically fails.
    pub fn solve(&self, objective: Objective) -> Result<Schedule, SymbiosisError> {
        let _span = obs::span!("optimal.lp_solve");
        if self.is_dense() {
            obs::count!("solver.lp.dense", 1);
            self.solve_dense(objective)
        } else {
            obs::count!("solver.lp.colgen", 1);
            self.solve_colgen(objective)
        }
    }

    /// The historical dense-tableau path (bitwise identical to pre-colgen
    /// releases).
    fn solve_dense(&self, objective: Objective) -> Result<Schedule, SymbiosisError> {
        let n_s = self.it.len();
        let balance = self.balance.as_ref().expect("dense path built rows");
        let mut program = match objective {
            Objective::MaxThroughput => LinearProgram::maximize(&self.it),
            Objective::MinThroughput => LinearProgram::minimize(&self.it),
        };
        // Time fractions form a distribution.
        program.constraint(&vec![1.0; n_s], Relation::Eq, 1.0);
        // Equal total work per job type (Equation 5): r_b - r_0 balances.
        for row in balance {
            program.constraint(row, Relation::Eq, 0.0);
        }
        let solution = program.solve()?;
        Ok(Schedule {
            throughput: solution.objective,
            fractions: solution.values,
        })
    }

    /// The column-generation path: revised simplex over lazily priced
    /// coschedule columns, started from the homogeneous-coschedule basis.
    fn solve_colgen(&self, objective: Objective) -> Result<Schedule, SymbiosisError> {
        let rates = self.rates;
        let n_types = rates.num_types();
        let n_s = self.it.len();
        let sign = match objective {
            Objective::MaxThroughput => -1.0, // minimise -it
            Objective::MinThroughput => 1.0,
        };

        // One row for sum(x) = 1 plus a balance row per type b > 0.
        let mut b_vec = vec![0.0; n_types];
        b_vec[0] = 1.0;

        // Homogeneous coschedules form a feasible starting basis: mixing
        // "all jobs of type t" fractions inversely proportional to their
        // rates balances work exactly.
        let basis: Vec<BasisColumn> = (0..n_types)
            .map(|t| {
                let mut counts = vec![0u32; n_types];
                counts[t] = rates.contexts() as u32;
                let si = rates
                    .index_of(&Coschedule::from_counts(counts))
                    .expect("homogeneous coschedule is always in the table");
                BasisColumn {
                    id: si,
                    cost: sign * self.it[si],
                    column: self.column(si),
                }
            })
            .collect();

        // Dantzig pricing over the streamed coschedule columns: most
        // negative reduced cost, lowest index on ties (deterministic).
        let rows = rates.rate_rows();
        let pricer = |duals: &[f64]| -> Option<PricedColumn> {
            let mut best: Option<(usize, f64)> = None;
            for (si, row) in rows.iter().enumerate() {
                let r0 = row[0];
                let mut reduced = sign * self.it[si] - duals[0];
                for (b, dual) in duals.iter().enumerate().skip(1) {
                    reduced -= dual * (row[b] - r0);
                }
                if reduced < -1e-9 {
                    let better = match best {
                        None => true,
                        Some((_, r)) => reduced < r,
                    };
                    if better {
                        best = Some((si, reduced));
                    }
                }
            }
            best.map(|(si, _)| PricedColumn {
                id: si,
                cost: sign * self.it[si],
                column: self.column(si),
            })
        };

        let solution = solve_colgen(&b_vec, basis, pricer, &ColGenOptions::default())
            .map_err(|e| SymbiosisError::Lp(SolveError::from(e)))?;
        let mut fractions = vec![0.0; n_s];
        for (si, x) in solution.basic {
            fractions[si] += x;
        }
        Ok(Schedule {
            throughput: sign * solution.objective,
            fractions,
        })
    }

    /// The sparse constraint column of coschedule `si`.
    fn column(&self, si: usize) -> SparseCol {
        let row = &self.rates.rate_rows()[si];
        let r0 = row[0];
        let mut entries = Vec::with_capacity(self.rates.num_types());
        entries.push((0u32, 1.0));
        for (b, &rb) in row.iter().enumerate().skip(1) {
            let delta = rb - r0;
            if delta != 0.0 {
                entries.push((b as u32, delta));
            }
        }
        SparseCol::new(entries)
    }
}

/// Solves the Section IV scheduling LP for the given objective.
///
/// Dispatches between the dense tableau and column generation at
/// [`DEFAULT_LP_DENSE_LIMIT`] coschedules; use [`ScheduleLp`] directly to
/// pick the threshold or to solve both objectives from one set of column
/// data.
///
/// # Errors
///
/// Returns [`SymbiosisError::Lp`] if the LP is infeasible (cannot happen for
/// valid rate tables: homogeneous coschedules always balance work) or
/// numerically fails.
///
/// # Examples
///
/// ```
/// use symbiosis::{optimal_schedule, Objective, WorkloadRates};
///
/// let rates = WorkloadRates::build(2, 2, |s| {
///     // Type A runs at 0.8 per job, type B at 0.4; no interference.
///     let per_job = [0.8, 0.4];
///     s.counts().iter().zip(per_job).map(|(&c, r)| c as f64 * r).collect()
/// })?;
/// let best = optimal_schedule(&rates, Objective::MaxThroughput)?;
/// let worst = optimal_schedule(&rates, Objective::MinThroughput)?;
/// assert!(best.throughput >= worst.throughput);
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub fn optimal_schedule(
    rates: &WorkloadRates,
    objective: Objective,
) -> Result<Schedule, SymbiosisError> {
    ScheduleLp::new(rates).solve(objective)
}

/// Convenience: both LP bounds at once, sharing one set of LP column data
/// (the `it` vector and balance rows are built a single time).
///
/// # Errors
///
/// Propagates [`SymbiosisError`] from either solve.
pub fn throughput_bounds(rates: &WorkloadRates) -> Result<(Schedule, Schedule), SymbiosisError> {
    let lp = ScheduleLp::new(rates);
    Ok((
        lp.solve(Objective::MinThroughput)?,
        lp.solve(Objective::MaxThroughput)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Insensitive jobs: per-job rate independent of co-runners.
    fn insensitive(per_job: &'static [f64], contexts: usize) -> WorkloadRates {
        WorkloadRates::build(per_job.len(), contexts, move |s| {
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, &r)| c as f64 * r)
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn insensitive_equal_jobs_fix_throughput() {
        // All types identical and insensitive: every schedule achieves the
        // same throughput, so max == min == K * rate.
        let rates = insensitive(&[0.5, 0.5, 0.5, 0.5], 4);
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!((best.throughput - 2.0).abs() < 1e-7);
        assert!((worst.throughput - 2.0).abs() < 1e-7);
    }

    #[test]
    fn insensitive_unequal_jobs_follow_harmonic_formula() {
        // Linear-bottleneck analysis (Section V-C1b): for insensitive jobs
        // the average throughput is N / sum_b (1/(K*rate_b)) and is
        // scheduler independent. With rates 0.8 and 0.4 on K=2:
        // AT = 2 / (1/1.6 + 1/0.8) = 1.0666...
        let rates = insensitive(&[0.8, 0.4], 2);
        let (worst, best) = throughput_bounds(&rates).unwrap();
        let expected = 2.0 / (1.0 / 1.6 + 1.0 / 0.8);
        assert!(
            (best.throughput - expected).abs() < 1e-7,
            "{}",
            best.throughput
        );
        assert!((worst.throughput - expected).abs() < 1e-7);
    }

    #[test]
    fn symbiotic_pairing_is_exploited() {
        // Two types on 2 contexts. Mixed coschedule AB runs at full speed
        // (no interference); homogeneous pairs thrash (half speed each).
        let rates = WorkloadRates::build(2, 2, |s| {
            let c = s.counts();
            if c[0] == 1 && c[1] == 1 {
                vec![1.0, 1.0]
            } else {
                c.iter().map(|&x| x as f64 * 0.5).collect()
            }
        })
        .unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        // Best: always run AB at it = 2. Worst: alternate AA/BB at it = 1.
        assert!((best.throughput - 2.0).abs() < 1e-7);
        assert!((worst.throughput - 1.0).abs() < 1e-7);
        // The optimal schedule indeed selects only AB.
        let ab = rates
            .index_of(&crate::Coschedule::from_counts(vec![1, 1]))
            .unwrap();
        assert!((best.fractions[ab] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn fractions_form_distribution_and_balance_work() {
        let rates = WorkloadRates::build(3, 3, |s| {
            let per_job = [1.0, 0.6, 0.3];
            let k = s.size() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (1.0 - 0.05 * (k - 1.0)))
                .collect()
        })
        .unwrap();
        let best = optimal_schedule(&rates, Objective::MaxThroughput).unwrap();
        let total: f64 = best.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
        let w0 = best.work_rate(&rates, 0);
        for b in 1..3 {
            assert!(
                (best.work_rate(&rates, b) - w0).abs() < 1e-6,
                "work must balance across types"
            );
        }
    }

    #[test]
    fn support_bounded_by_type_count() {
        // Section IV: an optimal basic solution selects at most N coschedules.
        let rates = WorkloadRates::build(4, 4, |s| {
            let per_job = [1.1, 0.8, 0.5, 0.3];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.7 + 0.1 * het))
                .collect()
        })
        .unwrap();
        for obj in [Objective::MaxThroughput, Objective::MinThroughput] {
            let sched = optimal_schedule(&rates, obj).unwrap();
            assert!(
                sched.selected(1e-7).len() <= 4,
                "basic solution uses at most N coschedules"
            );
        }
    }

    #[test]
    fn max_dominates_min_on_random_like_tables() {
        let rates = WorkloadRates::build(4, 4, |s| {
            // Pseudo-irregular but deterministic rates.
            s.counts()
                .iter()
                .enumerate()
                .map(|(b, &c)| {
                    if c == 0 {
                        0.0
                    } else {
                        let x = (si_hash(s.counts(), b) % 100) as f64 / 100.0;
                        c as f64 * (0.2 + 0.6 * x) / s.size() as f64
                    }
                })
                .collect()
        })
        .unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!(best.throughput >= worst.throughput - 1e-9);
    }

    fn si_hash(counts: &[u32], b: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &c in counts {
            h = (h ^ c as u64).wrapping_mul(0x100_0000_01b3);
        }
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    }

    #[test]
    fn single_type_workload_has_unique_throughput() {
        let rates = WorkloadRates::build(1, 4, |s| vec![s.size() as f64 * 0.25]).unwrap();
        let (worst, best) = throughput_bounds(&rates).unwrap();
        assert!((best.throughput - 1.0).abs() < 1e-9);
        assert!((worst.throughput - 1.0).abs() < 1e-9);
    }

    /// Forces both solver paths on the same table and compares.
    fn assert_paths_agree(rates: &WorkloadRates, tol: f64) {
        let dense = ScheduleLp::with_dense_limit(rates, usize::MAX);
        let colgen = ScheduleLp::with_dense_limit(rates, 0);
        assert!(dense.is_dense());
        assert!(!colgen.is_dense());
        for obj in [Objective::MaxThroughput, Objective::MinThroughput] {
            let d = dense.solve(obj).unwrap();
            let c = colgen.solve(obj).unwrap();
            assert!(
                (d.throughput - c.throughput).abs() <= tol,
                "objective {obj:?}: dense {} vs colgen {}",
                d.throughput,
                c.throughput
            );
            // The colgen solution must itself be feasible.
            let total: f64 = c.fractions.iter().sum();
            assert!((total - 1.0).abs() < 1e-7);
            assert!(c.fractions.iter().all(|&x| x >= -1e-9));
            let w0 = c.work_rate(rates, 0);
            for b in 1..rates.num_types() {
                assert!((c.work_rate(rates, b) - w0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn colgen_matches_dense_oracle_on_small_tables() {
        let symbiotic = WorkloadRates::build(4, 4, |s| {
            let per_job = [1.1, 0.8, 0.5, 0.3];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.7 + 0.1 * het))
                .collect()
        })
        .unwrap();
        assert_paths_agree(&symbiotic, 1e-7);
        assert_paths_agree(&insensitive(&[0.9, 0.4, 0.7], 3), 1e-7);
        assert_paths_agree(&insensitive(&[0.5], 4), 1e-9);
    }

    #[test]
    fn default_threshold_keeps_historical_sizes_dense() {
        let rates = insensitive(&[0.9, 0.4, 0.7], 3);
        assert!(ScheduleLp::new(&rates).is_dense());
        use crate::coschedule::CoscheduleIter;
        assert!(
            CoscheduleIter::count_total(8, 4) <= DEFAULT_LP_DENSE_LIMIT,
            "N=8/K=4 stays dense"
        );
        assert!(
            CoscheduleIter::count_total(12, 4) <= DEFAULT_LP_DENSE_LIMIT,
            "12-benchmark K=4 stays dense"
        );
        assert!(
            CoscheduleIter::count_total(12, 8) > DEFAULT_LP_DENSE_LIMIT,
            "N=12/K=8 goes colgen"
        );
    }
}
