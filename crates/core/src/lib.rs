//! Symbiotic job scheduling analysis — the core of the reproduction of
//! *"Revisiting Symbiotic Job Scheduling"* (Eyerman, Michaud, Rogiest,
//! ISPASS 2015).
//!
//! Given the execution rate of every job type in every possible coschedule
//! (a [`WorkloadRates`] table, typically measured with the `simproc`
//! simulator via the `workloads` crate), this crate computes:
//!
//! * the **theoretically optimal and worst average throughput** of a fully
//!   loaded machine under the fixed-work constraint, by linear programming
//!   ([`optimal_schedule`], Section IV of the paper);
//! * the **FCFS baseline throughput**, by an event-driven maximum-throughput
//!   experiment or an exact Markov-chain solution ([`fcfs_throughput`],
//!   [`fcfs_throughput_markov`]);
//! * the **variability statistics** behind Figure 1
//!   ([`analyze_variability`]);
//! * the **linear-bottleneck least-squares analysis** behind Figure 3
//!   ([`fit_linear_bottleneck`]);
//! * the **coschedule-heterogeneity table** (Table II,
//!   [`heterogeneity_table`]); and
//! * the **fairness counterfactual** of Section V-D
//!   ([`fairness_experiment`]).
//!
//! The paper's headline finding reproduces directly from these pieces: the
//! per-job and per-coschedule performance spreads are large, yet the gap
//! between the optimal scheduler and agnostic FCFS is small, because the
//! fixed-work constraint forces every job type to be executed eventually.
//!
//! # Quick start
//!
//! ```
//! use symbiosis::{
//!     analyze_variability, optimal_schedule, FcfsParams, Objective, WorkloadRates,
//! };
//!
//! // A toy 2-type workload on a 2-context machine: mixing job types is 20%
//! // faster than running clones together.
//! let rates = WorkloadRates::build(2, 2, |s| {
//!     let boost = if s.heterogeneity() == 2 { 1.2 } else { 1.0 };
//!     s.counts().iter().map(|&c| c as f64 * 0.5 * boost).collect()
//! })?;
//!
//! let best = optimal_schedule(&rates, Objective::MaxThroughput)?;
//! let stats = analyze_variability(&rates, FcfsParams::default())?;
//! assert!(best.throughput >= stats.fcfs);
//! # Ok::<(), symbiosis::SymbiosisError>(())
//! ```

pub mod bottleneck;
pub mod coschedule;
pub mod error;
pub mod fairness;
pub mod fcfs;
pub mod heterogeneity;
pub mod metrics;
pub mod optimal;
pub mod rates;
#[doc(hidden)]
pub mod rng;
pub mod variability;

pub use bottleneck::{
    fit_linear_bottleneck, fit_linear_bottleneck_rows, per_type_rate_difference, BottleneckFit,
};
pub use coschedule::{
    enumerate_coschedules, enumerate_workloads, Coschedule, CoscheduleIter, CoscheduleRank,
};
pub use error::SymbiosisError;
pub use fairness::{fairness_experiment, rebalanced_heterogeneous, FairnessExperiment};
pub use fcfs::{
    fcfs_throughput, fcfs_throughput_markov, fcfs_throughput_markov_tuned,
    fcfs_throughput_markov_with, markov_chain, markov_coloring, FcfsOutcome, JobSize,
    DEFAULT_MARKOV_ACCEL_LIMIT, DEFAULT_MARKOV_DENSE_LIMIT,
};
pub use heterogeneity::{
    heterogeneity_table, heterogeneity_table_from_parts, random_draw_heterogeneity_probability,
    HeterogeneityRow, HeterogeneityTable,
};
pub use metrics::Spread;
pub use optimal::{
    optimal_schedule, throughput_bounds, Objective, Schedule, ScheduleLp, DEFAULT_LP_DENSE_LIMIT,
};
pub use rates::{
    assert_rate_model_conformance, AnalyticModel, CachedModel, RateModel, WorkloadRates,
};
pub use variability::{
    analyze_variability, instantaneous_spread, per_job_spreads, FcfsParams, WorkloadVariability,
};
