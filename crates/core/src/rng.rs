//! Small deterministic RNG (SplitMix64) for the stochastic experiments.
//!
//! Self-contained so that published experiment numbers cannot drift with
//! external crate upgrades. Exported `#[doc(hidden)]` for the sibling
//! crates and the workspace test suites — one definition keeps every
//! stream bit-identical. (The `simproc` crate carries its own copy on
//! purpose: it is fully independent of this crate.)

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Exponentially distributed value with mean `mean`.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0) by mapping the draw into (0, 1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SplitMix64::new(4);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = SplitMix64::new(8);
        for _ in 0..1000 {
            assert!(rng.next_range(7) < 7);
        }
    }
}
