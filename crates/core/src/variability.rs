//! Figure 1: per-job IPC, instantaneous-throughput and average-throughput
//! variability for one workload.

use crate::error::SymbiosisError;
use crate::fcfs::{fcfs_throughput, JobSize};
use crate::metrics::Spread;
use crate::optimal::{optimal_schedule, Objective};
use crate::rates::WorkloadRates;

/// Variability statistics of one workload (one point behind each Figure 1
/// bar).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadVariability {
    /// Per-job rate spread for each job type: how much one job's
    /// performance moves with its co-runners (relative spreads of WIPC are
    /// identical to those of raw IPC, since the solo rate divides out).
    pub per_job: Vec<Spread>,
    /// Spread of the instantaneous throughput `it(s)` over all coschedules.
    pub instantaneous: Spread,
    /// FCFS average throughput (the Figure 1 zero line).
    pub fcfs: f64,
    /// LP maximum average throughput.
    pub best: f64,
    /// LP minimum average throughput.
    pub worst: f64,
}

impl WorkloadVariability {
    /// Mean over job types of the per-job relative max excursion.
    pub fn per_job_rel_max(&self) -> f64 {
        mean(self.per_job.iter().map(Spread::rel_max))
    }

    /// Mean over job types of the per-job relative min excursion.
    pub fn per_job_rel_min(&self) -> f64 {
        mean(self.per_job.iter().map(Spread::rel_min))
    }

    /// Mean per-job variability (`(max-min)/mean`), the paper's "37%".
    pub fn per_job_variability(&self) -> f64 {
        mean(self.per_job.iter().map(Spread::variability))
    }

    /// Optimal gain over FCFS (the paper's headline "3%").
    pub fn optimal_gain(&self) -> f64 {
        self.best / self.fcfs - 1.0
    }

    /// Worst-scheduler loss versus FCFS (negative number).
    pub fn worst_loss(&self) -> f64 {
        self.worst / self.fcfs - 1.0
    }

    /// Average-throughput variability `(best - worst) / fcfs`.
    pub fn average_variability(&self) -> f64 {
        (self.best - self.worst) / self.fcfs
    }
}

fn mean<I: Iterator<Item = f64>>(iter: I) -> f64 {
    crate::metrics::mean(iter).unwrap_or(0.0)
}

/// Parameters for the FCFS leg of the variability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcfsParams {
    /// Jobs completed in the event-driven experiment.
    pub jobs: u64,
    /// Job size distribution.
    pub sizes: JobSize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FcfsParams {
    fn default() -> Self {
        FcfsParams {
            jobs: 40_000,
            sizes: JobSize::Deterministic,
            seed: 0x5EED,
        }
    }
}

/// Computes the Figure 1 statistics for one workload.
///
/// # Errors
///
/// Propagates [`SymbiosisError`] from the LP solves or the FCFS experiment.
///
/// # Examples
///
/// ```
/// use symbiosis::{analyze_variability, FcfsParams, WorkloadRates};
///
/// let rates = WorkloadRates::build(2, 2, |s| {
///     let boost = if s.heterogeneity() == 2 { 1.2 } else { 1.0 };
///     s.counts().iter().map(|&c| c as f64 * 0.5 * boost).collect()
/// })?;
/// let v = analyze_variability(&rates, FcfsParams::default())?;
/// assert!(v.best >= v.fcfs && v.fcfs >= v.worst - 1e-9);
/// # Ok::<(), symbiosis::SymbiosisError>(())
/// ```
pub fn analyze_variability(
    rates: &WorkloadRates,
    fcfs_params: FcfsParams,
) -> Result<WorkloadVariability, SymbiosisError> {
    let per_job = per_job_spreads(rates)?;
    let instantaneous = instantaneous_spread(rates);

    let best = optimal_schedule(rates, Objective::MaxThroughput)?.throughput;
    let worst = optimal_schedule(rates, Objective::MinThroughput)?.throughput;
    let fcfs =
        fcfs_throughput(rates, fcfs_params.jobs, fcfs_params.sizes, fcfs_params.seed)?.throughput;

    Ok(WorkloadVariability {
        per_job,
        instantaneous,
        fcfs,
        best,
        worst,
    })
}

/// Per-type spread of one job's rate over the coschedules containing the
/// type — the pure table statistics behind the Figure 1 "per-job IPC" bar.
/// Callers obtaining the throughput legs through a `Session` combine this
/// with the session's rows to assemble a [`WorkloadVariability`].
///
/// # Errors
///
/// Returns [`SymbiosisError::InvalidRates`] if some type appears in no
/// coschedule (impossible for tables built by `WorkloadRates::build`).
pub fn per_job_spreads(rates: &WorkloadRates) -> Result<Vec<Spread>, SymbiosisError> {
    let n = rates.num_types();
    let n_s = rates.coschedules().len();
    let mut per_job = Vec::with_capacity(n);
    for b in 0..n {
        let values = (0..n_s).filter_map(|si| {
            let c = rates.coschedules()[si].count(b);
            (c > 0).then(|| rates.per_job_rate(si, b))
        });
        let spread = Spread::from_values(values).ok_or_else(|| {
            SymbiosisError::InvalidRates(format!("type {b} appears in no coschedule"))
        })?;
        per_job.push(spread);
    }
    Ok(per_job)
}

/// Spread of the instantaneous throughput `it(s)` over all coschedules —
/// the Figure 1 "instantaneous TP" bar.
pub fn instantaneous_spread(rates: &WorkloadRates) -> Spread {
    let n_s = rates.coschedules().len();
    Spread::from_values((0..n_s).map(|si| rates.instantaneous_throughput(si)))
        .expect("at least one coschedule")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbiotic_rates() -> WorkloadRates {
        WorkloadRates::build(4, 4, |s| {
            let per_job = [1.0, 0.8, 0.5, 0.3];
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(per_job)
                .map(|(&c, r)| c as f64 * r * (0.55 + 0.12 * het))
                .collect()
        })
        .unwrap()
    }

    #[test]
    fn ordering_worst_fcfs_best_holds() {
        let v = analyze_variability(&symbiotic_rates(), FcfsParams::default()).unwrap();
        assert!(v.worst <= v.fcfs + 1e-6);
        assert!(v.fcfs <= v.best + 1e-6);
        assert!(v.optimal_gain() >= -1e-9);
        assert!(v.worst_loss() <= 1e-9);
    }

    #[test]
    fn per_job_spread_reflects_coschedule_sensitivity() {
        let v = analyze_variability(&symbiotic_rates(), FcfsParams::default()).unwrap();
        // Het ranges 1..=4, so per-job rates vary by design.
        assert!(v.per_job_variability() > 0.1);
        assert!(v.per_job_rel_max() > 0.0);
        assert!(v.per_job_rel_min() < 0.0);
    }

    #[test]
    fn insensitive_workload_has_zero_average_variability() {
        let rates = WorkloadRates::build(3, 3, |s| {
            s.counts().iter().map(|&c| c as f64 * 0.4).collect()
        })
        .unwrap();
        let v = analyze_variability(&rates, FcfsParams::default()).unwrap();
        assert!(v.per_job_variability() < 1e-9);
        assert!(v.average_variability() < 1e-6);
    }

    #[test]
    fn paper_key_claim_shape_average_well_below_instantaneous() {
        // The paper's central observation: average-throughput variability is
        // far below per-coschedule instantaneous-throughput variability.
        let v = analyze_variability(&symbiotic_rates(), FcfsParams::default()).unwrap();
        assert!(
            v.average_variability() < v.instantaneous.variability(),
            "avg {} must be below instantaneous {}",
            v.average_variability(),
            v.instantaneous.variability()
        );
    }
}
