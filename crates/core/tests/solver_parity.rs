//! Property tests pinning the scalable solver paths against their dense
//! reference oracles on randomized (seeded) rate tables:
//!
//! * column-generation `ScheduleLp` vs the dense-tableau `solve_standard`
//!   path, across objectives and several `(N, K)` shapes;
//! * the sparse Gauss–Seidel Markov path vs the dense LU path;
//! * the streaming `CoscheduleIter` vs the materialised
//!   `enumerate_coschedules`, exact sequence equality.

use lp::sparse::{stationary_gauss_seidel, stationary_multicolor, stationary_sor, SparseError};
use symbiosis::rng::SplitMix64;
use symbiosis::{
    enumerate_coschedules, fcfs_throughput_markov_tuned, fcfs_throughput_markov_with, markov_chain,
    markov_coloring, CoscheduleIter, Objective, ScheduleLp, WorkloadRates,
};

/// A seeded random rate table: every present type gets a positive rate
/// drawn per `(coschedule, type)` pair, with a mild heterogeneity tilt so
/// tables are symbiosis-sensitive rather than flat.
fn random_rates(n: usize, k: usize, seed: u64) -> WorkloadRates {
    WorkloadRates::build(n, k, |s| {
        let het = s.heterogeneity() as f64 / k as f64;
        s.counts()
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                if c == 0 {
                    return 0.0;
                }
                // Derive a per-(coschedule, type) stream so rates do not
                // depend on enumeration order.
                let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
                for &cnt in s.counts() {
                    h = (h ^ cnt as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut rng = SplitMix64::new(h ^ (b as u64) << 32);
                let u = rng.next_f64();
                c as f64 * (0.15 + 0.75 * u) * (0.6 + 0.4 * het)
            })
            .collect()
    })
    .expect("valid random table")
}

/// The `(N, K)` shapes the parity suite sweeps (largest: 330 states).
const SHAPES: &[(usize, usize)] = &[
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 3),
    (6, 4),
    (8, 4),
    (4, 6),
    (3, 8),
    (5, 5),
];

const SEEDS: &[u64] = &[1, 0xBEEF, 0x1234_5678];

#[test]
fn colgen_throughput_matches_dense_oracle() {
    for &(n, k) in SHAPES {
        for &seed in SEEDS {
            let rates = random_rates(n, k, seed);
            let dense = ScheduleLp::with_dense_limit(&rates, usize::MAX);
            let colgen = ScheduleLp::with_dense_limit(&rates, 0);
            for obj in [Objective::MaxThroughput, Objective::MinThroughput] {
                let d = dense.solve(obj).expect("dense solves");
                let c = colgen.solve(obj).expect("colgen solves");
                assert!(
                    (d.throughput - c.throughput).abs() <= 1e-7,
                    "shape ({n},{k}) seed {seed} {obj:?}: dense {} vs colgen {}",
                    d.throughput,
                    c.throughput
                );
            }
        }
    }
}

#[test]
fn colgen_fractions_are_feasible_basic_solutions() {
    for &(n, k) in SHAPES {
        let rates = random_rates(n, k, 0xF00D);
        let colgen = ScheduleLp::with_dense_limit(&rates, 0);
        for obj in [Objective::MaxThroughput, Objective::MinThroughput] {
            let sched = colgen.solve(obj).expect("colgen solves");
            let total: f64 = sched.fractions.iter().sum();
            assert!((total - 1.0).abs() < 1e-7, "fractions sum to 1");
            assert!(sched.fractions.iter().all(|&x| x >= -1e-9), "non-negative");
            let w0 = sched.work_rate(&rates, 0);
            for b in 1..n {
                assert!(
                    (sched.work_rate(&rates, b) - w0).abs() < 1e-6,
                    "shape ({n},{k}) {obj:?}: work balances across types"
                );
            }
            // Section IV: a basic solution uses at most N coschedules.
            assert!(
                sched.selected(1e-7).len() <= n,
                "support bounded by the type count"
            );
        }
    }
}

#[test]
fn sparse_markov_matches_dense_lu() {
    for &(n, k) in SHAPES {
        for &seed in SEEDS {
            let rates = random_rates(n, k, seed);
            let dense = fcfs_throughput_markov_with(&rates, usize::MAX).expect("dense solves");
            let sparse = fcfs_throughput_markov_with(&rates, 0).expect("sparse solves");
            assert!(
                (dense.throughput - sparse.throughput).abs() <= 1e-7,
                "shape ({n},{k}) seed {seed}: dense {} vs sparse {}",
                dense.throughput,
                sparse.throughput
            );
            for (i, (d, s)) in dense.fractions.iter().zip(&sparse.fractions).enumerate() {
                assert!(
                    (d - s).abs() <= 1e-7,
                    "shape ({n},{k}) seed {seed}: pi[{i}] dense {d} vs sparse {s}"
                );
            }
        }
    }
}

/// Solver tolerance / budget mirrored from the `fcfs` dispatch so the
/// oracle comparisons exercise the exact production settings.
const TOL: f64 = 1e-12;
const SWEEPS: usize = 20_000;

#[test]
fn sor_and_multicolor_match_gauss_seidel_on_markov_chains() {
    // The accelerated stationary solvers must agree with the sequential
    // Gauss–Seidel oracle to 1e-9 on every real FCFS chain shape the
    // parity suite sweeps — not just on synthetic graphs.
    for &(n, k) in SHAPES {
        for &seed in SEEDS {
            let rates = random_rates(n, k, seed);
            let (inflow, outflow) = markov_chain(&rates);
            let gs = stationary_gauss_seidel(&inflow, &outflow, TOL, SWEEPS).expect("gs solves");
            let sor = stationary_sor(&inflow, &outflow, TOL, SWEEPS).expect("sor solves");
            let colors = markov_coloring(&rates);
            let par = stationary_multicolor(&inflow, &outflow, &colors, TOL, SWEEPS, 4)
                .expect("multicolor solves");
            for i in 0..gs.len() {
                assert!(
                    (gs[i] - sor[i]).abs() <= 1e-9,
                    "shape ({n},{k}) seed {seed}: pi[{i}] gs {} vs sor {}",
                    gs[i],
                    sor[i]
                );
                assert!(
                    (gs[i] - par[i]).abs() <= 1e-9,
                    "shape ({n},{k}) seed {seed}: pi[{i}] gs {} vs multicolor {}",
                    gs[i],
                    par[i]
                );
            }
        }
    }
}

#[test]
fn accelerated_dispatch_matches_dense_lu_within_1e9() {
    // End-to-end: force each sparse tier through the public dispatch and
    // pin all of them against the dense LU oracle.
    for &(n, k) in SHAPES {
        for &seed in SEEDS {
            let rates = random_rates(n, k, seed);
            let dense = fcfs_throughput_markov_with(&rates, usize::MAX).expect("dense solves");
            // accel_limit = usize::MAX forces sequential Gauss–Seidel;
            // accel_limit = 0 with threads = 1 forces natural-order SOR,
            // with threads = 4 the multi-colored parallel sweep.
            let gs = fcfs_throughput_markov_tuned(&rates, 0, usize::MAX, 0).expect("gs solves");
            let sor = fcfs_throughput_markov_tuned(&rates, 0, 0, 1).expect("sor solves");
            let par = fcfs_throughput_markov_tuned(&rates, 0, 0, 4).expect("multicolor solves");
            for out in [&gs, &sor, &par] {
                assert!(
                    (dense.throughput - out.throughput).abs() <= 1e-9,
                    "shape ({n},{k}) seed {seed}: dense {} vs accelerated {}",
                    dense.throughput,
                    out.throughput
                );
                for (i, (d, s)) in dense.fractions.iter().zip(&out.fractions).enumerate() {
                    assert!(
                        (d - s).abs() <= 1e-9,
                        "shape ({n},{k}) seed {seed}: pi[{i}] dense {d} vs accelerated {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn multicolor_is_deterministic_across_thread_counts() {
    // Colored sweeps order writes by color class, so the parallel solver
    // must return bitwise-identical vectors no matter the thread count.
    let rates = random_rates(6, 4, 0xC0FFEE);
    let (inflow, outflow) = markov_chain(&rates);
    let colors = markov_coloring(&rates);
    let one = stationary_multicolor(&inflow, &outflow, &colors, TOL, SWEEPS, 1).unwrap();
    for threads in [2, 3, 4, 8] {
        let t = stationary_multicolor(&inflow, &outflow, &colors, TOL, SWEEPS, threads).unwrap();
        assert_eq!(one, t, "threads={threads} must be bitwise-stable");
    }
}

#[test]
fn sub_accel_limit_dispatch_is_bitwise_sequential_gauss_seidel() {
    // Every parity shape is far below DEFAULT_MARKOV_ACCEL_LIMIT, so the
    // tuned dispatch with default thresholds must be the *same
    // computation* as an explicit sequential Gauss–Seidel run: bitwise
    // equality, not tolerance agreement.
    for &(n, k) in SHAPES {
        let rates = random_rates(n, k, 11);
        assert!(rates.coschedules().len() <= symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT);
        let via_default = fcfs_throughput_markov_with(&rates, 0).unwrap();
        let via_gs = fcfs_throughput_markov_tuned(&rates, 0, usize::MAX, 0).unwrap();
        assert_eq!(via_default, via_gs, "shape ({n},{k}): sparse tier fallback");
    }
}

#[test]
fn chain_level_error_cases_surface_from_every_accelerated_solver() {
    // An absorbing (all-zero outflow) chain is degenerate; a one-sweep
    // budget cannot converge a real chain. Both accelerated paths must
    // report the same error classes as sequential Gauss–Seidel.
    let rates = random_rates(4, 4, 3);
    let (inflow, outflow) = markov_chain(&rates);
    let colors = markov_coloring(&rates);
    let absorbing = vec![0.0; outflow.len()];
    assert!(matches!(
        stationary_gauss_seidel(&inflow, &absorbing, TOL, SWEEPS),
        Err(SparseError::Degenerate(_))
    ));
    assert!(matches!(
        stationary_sor(&inflow, &absorbing, TOL, SWEEPS),
        Err(SparseError::Degenerate(_))
    ));
    assert!(matches!(
        stationary_multicolor(&inflow, &absorbing, &colors, TOL, SWEEPS, 2),
        Err(SparseError::Degenerate(_))
    ));
    assert!(matches!(
        stationary_sor(&inflow, &outflow, TOL, 1),
        Err(SparseError::NoConvergence(_))
    ));
    assert!(matches!(
        stationary_multicolor(&inflow, &outflow, &colors, TOL, 1, 2),
        Err(SparseError::NoConvergence(_))
    ));
}

#[test]
fn default_dispatch_is_bitwise_dense_below_the_threshold() {
    // The public functions must keep producing the historical numbers for
    // every pre-existing size: same path, bitwise-identical results.
    for &(n, k) in &[(4, 4), (8, 4)] {
        let rates = random_rates(n, k, 7);
        let via_default = symbiosis::optimal_schedule(&rates, Objective::MaxThroughput).unwrap();
        let via_dense = ScheduleLp::with_dense_limit(&rates, usize::MAX)
            .solve(Objective::MaxThroughput)
            .unwrap();
        assert_eq!(via_default, via_dense, "shape ({n},{k}) LP path");
        let m_default = symbiosis::fcfs_throughput_markov(&rates).unwrap();
        let m_dense = fcfs_throughput_markov_with(&rates, usize::MAX).unwrap();
        assert_eq!(m_default, m_dense, "shape ({n},{k}) Markov path");
    }
}

#[test]
fn coschedule_stream_equals_materialised_enumeration() {
    for n in 1..=8 {
        for k in 1..=6 {
            let streamed: Vec<_> = CoscheduleIter::new(n, k).collect();
            assert_eq!(
                streamed,
                enumerate_coschedules(n, k),
                "exact sequence equality for n={n} k={k}"
            );
            assert_eq!(streamed.len(), CoscheduleIter::count_total(n, k));
        }
    }
}

#[test]
fn colgen_opens_the_n12_k8_frontier() {
    // The acceptance shape itself: 75 582 coschedules, solved lazily. The
    // dense oracle is out of reach here, so pin feasibility and the LP
    // bound ordering instead (oracle parity is pinned at tractable sizes
    // above).
    let rates = random_rates(12, 8, 42);
    assert_eq!(rates.coschedules().len(), 75_582);
    let lp = ScheduleLp::new(&rates);
    assert!(!lp.is_dense(), "N=12/K=8 must take the colgen path");
    let best = lp.solve(Objective::MaxThroughput).expect("colgen solves");
    let worst = lp.solve(Objective::MinThroughput).expect("colgen solves");
    assert!(best.throughput >= worst.throughput - 1e-9);
    for sched in [&best, &worst] {
        let total: f64 = sched.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
        let w0 = sched.work_rate(&rates, 0);
        for b in 1..12 {
            assert!((sched.work_rate(&rates, b) - w0).abs() < 1e-6);
        }
        assert!(sched.selected(1e-7).len() <= 12);
    }
}
