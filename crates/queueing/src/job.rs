//! Jobs and the in-system job pool used by the latency simulator.

use std::collections::BTreeSet;

/// Identifier of a job within one experiment (arrival order).
pub type JobId = u64;

/// A job present in the system (running or queued).
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Arrival-order identifier.
    pub id: JobId,
    /// Job type index.
    pub ty: usize,
    /// Remaining work (starts at the job's size).
    pub remaining: f64,
    /// Simulation time at which the job arrived.
    pub arrival: f64,
}

/// Orders `f64` keys inside a `BTreeSet`; remaining work is always >= 0 so
/// IEEE bit order equals numeric order.
fn key(remaining: f64, id: JobId) -> (u64, JobId) {
    (remaining.to_bits(), id)
}

/// All jobs currently in the system, indexable the ways the four schedulers
/// need: global arrival order, per-type counts, and per-type
/// smallest-remaining-first.
#[derive(Debug, Default)]
pub struct JobPool {
    jobs: Vec<Option<Job>>,
    /// Arrival order (ids are dense and monotonically assigned).
    fifo: std::collections::VecDeque<JobId>,
    /// Arrival order per type (pruned lazily); keeps `oldest_of_type`
    /// O(want) even when thousands of jobs queue under saturation.
    fifo_by_type: Vec<std::collections::VecDeque<JobId>>,
    /// Per type: jobs ordered by remaining work.
    by_remaining: Vec<BTreeSet<(u64, JobId)>>,
    counts: Vec<u32>,
    len: usize,
}

impl JobPool {
    /// Creates an empty pool for `num_types` job types.
    pub fn new(num_types: usize) -> Self {
        JobPool {
            jobs: Vec::new(),
            fifo: std::collections::VecDeque::new(),
            fifo_by_type: vec![std::collections::VecDeque::new(); num_types],
            by_remaining: vec![BTreeSet::new(); num_types],
            counts: vec![0; num_types],
            len: 0,
        }
    }

    /// Number of jobs in the system.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the system is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-type job counts (length = number of types).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Adds a job; its `id` must be fresh and monotonically increasing.
    ///
    /// # Panics
    ///
    /// Panics if the id was used before or the type is out of range.
    pub fn insert(&mut self, job: Job) {
        let idx = job.id as usize;
        if idx >= self.jobs.len() {
            self.jobs.resize(idx + 1, None);
        }
        assert!(self.jobs[idx].is_none(), "job id {} reused", job.id);
        assert!(job.ty < self.counts.len(), "type {} out of range", job.ty);
        self.fifo.push_back(job.id);
        self.fifo_by_type[job.ty].push_back(job.id);
        self.by_remaining[job.ty].insert(key(job.remaining, job.id));
        self.counts[job.ty] += 1;
        self.len += 1;
        self.jobs[idx] = Some(job);
    }

    /// Looks a job up by id.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id as usize).and_then(Option::as_ref)
    }

    /// Removes a finished job and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in the pool.
    pub fn remove(&mut self, id: JobId) -> Job {
        let job = self.jobs[id as usize]
            .take()
            .unwrap_or_else(|| panic!("job {id} not in pool"));
        self.by_remaining[job.ty].remove(&key(job.remaining, job.id));
        self.counts[job.ty] -= 1;
        self.len -= 1;
        // fifo entries are pruned lazily in `iter_fifo`.
        job
    }

    /// Decreases a job's remaining work, keeping indexes consistent.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in the pool or `new_remaining` is negative
    /// beyond rounding.
    pub fn set_remaining(&mut self, id: JobId, new_remaining: f64) {
        let job = self.jobs[id as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("job {id} not in pool"));
        let new_remaining = new_remaining.max(0.0);
        self.by_remaining[job.ty].remove(&key(job.remaining, job.id));
        job.remaining = new_remaining;
        self.by_remaining[job.ty].insert(key(job.remaining, job.id));
    }

    /// Iterates job ids in arrival order (oldest first).
    pub fn iter_fifo(&mut self) -> impl Iterator<Item = JobId> + '_ {
        // Prune dead ids from the front lazily; then iterate live ones.
        while let Some(&front) = self.fifo.front() {
            if self.jobs[front as usize].is_some() {
                break;
            }
            self.fifo.pop_front();
        }
        let jobs = &self.jobs;
        self.fifo
            .iter()
            .copied()
            .filter(move |&id| jobs[id as usize].is_some())
    }

    /// The oldest `want` jobs of type `ty` (arrival order).
    pub fn oldest_of_type(&mut self, ty: usize, want: usize) -> Vec<JobId> {
        // Prune dead entries from the front; completed jobs are biased to
        // be old, so lazily-deleted ids rarely linger in the middle.
        while let Some(&front) = self.fifo_by_type[ty].front() {
            if self.jobs[front as usize].is_some() {
                break;
            }
            self.fifo_by_type[ty].pop_front();
        }
        let jobs = &self.jobs;
        self.fifo_by_type[ty]
            .iter()
            .copied()
            .filter(|&id| jobs[id as usize].is_some())
            .take(want)
            .collect()
    }

    /// The `want` jobs of type `ty` with the smallest remaining work.
    pub fn shortest_of_type(&self, ty: usize, want: usize) -> Vec<JobId> {
        self.by_remaining[ty]
            .iter()
            .take(want)
            .map(|&(_, id)| id)
            .collect()
    }

    /// Sum of the remaining work of the `want` shortest jobs of type `ty`.
    pub fn shortest_remaining_sum(&self, ty: usize, want: usize) -> f64 {
        self.by_remaining[ty]
            .iter()
            .take(want)
            .map(|&(bits, _)| f64::from_bits(bits))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: JobId, ty: usize, remaining: f64) -> Job {
        Job {
            id,
            ty,
            remaining,
            arrival: id as f64,
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut pool = JobPool::new(2);
        pool.insert(job(0, 0, 1.0));
        pool.insert(job(1, 1, 2.0));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.counts(), &[1, 1]);
        let j = pool.remove(0);
        assert_eq!(j.ty, 0);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.counts(), &[0, 1]);
        assert!(pool.get(0).is_none());
        assert!(pool.get(1).is_some());
    }

    #[test]
    fn fifo_order_skips_removed() {
        let mut pool = JobPool::new(1);
        for i in 0..5 {
            pool.insert(job(i, 0, 1.0));
        }
        pool.remove(0);
        pool.remove(2);
        let order: Vec<JobId> = pool.iter_fifo().collect();
        assert_eq!(order, vec![1, 3, 4]);
    }

    #[test]
    fn shortest_of_type_orders_by_remaining() {
        let mut pool = JobPool::new(2);
        pool.insert(job(0, 0, 3.0));
        pool.insert(job(1, 0, 1.0));
        pool.insert(job(2, 0, 2.0));
        pool.insert(job(3, 1, 0.5));
        assert_eq!(pool.shortest_of_type(0, 2), vec![1, 2]);
        assert!((pool.shortest_remaining_sum(0, 2) - 3.0).abs() < 1e-12);
        assert_eq!(pool.shortest_of_type(1, 5), vec![3]);
    }

    #[test]
    fn set_remaining_reorders() {
        let mut pool = JobPool::new(1);
        pool.insert(job(0, 0, 3.0));
        pool.insert(job(1, 0, 2.0));
        pool.set_remaining(0, 0.5);
        assert_eq!(pool.shortest_of_type(0, 1), vec![0]);
        assert_eq!(pool.get(0).unwrap().remaining, 0.5);
        // Negative values are clamped to zero.
        pool.set_remaining(1, -1e-15);
        assert_eq!(pool.get(1).unwrap().remaining, 0.0);
    }

    #[test]
    fn oldest_of_type_filters() {
        let mut pool = JobPool::new(2);
        pool.insert(job(0, 1, 1.0));
        pool.insert(job(1, 0, 1.0));
        pool.insert(job(2, 1, 1.0));
        pool.insert(job(3, 1, 1.0));
        assert_eq!(pool.oldest_of_type(1, 2), vec![0, 2]);
        assert_eq!(pool.oldest_of_type(0, 5), vec![1]);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn duplicate_id_panics() {
        let mut pool = JobPool::new(1);
        pool.insert(job(0, 0, 1.0));
        pool.insert(job(0, 0, 1.0));
    }

    #[test]
    fn equal_remaining_jobs_distinct_in_index() {
        let mut pool = JobPool::new(1);
        pool.insert(job(0, 0, 1.0));
        pool.insert(job(1, 0, 1.0));
        assert_eq!(pool.shortest_of_type(0, 2).len(), 2);
    }
}
