//! The discrete-event latency experiment (Section VI of the paper).
//!
//! Jobs arrive as a Poisson process, queue when the machine is busy, and
//! run at coschedule-dependent rates chosen by a pluggable [`Scheduler`].
//! Between events (arrival / completion) the running coschedule is fixed,
//! so time advances analytically to the next event — no time-stepping.

use symbiosis::rng::SplitMix64;
use symbiosis::RateModel;

use crate::job::{Job, JobPool};
use crate::sched::Scheduler;

/// Distribution of job sizes (work per job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeDist {
    /// All jobs carry one unit of work.
    Deterministic,
    /// Exponential with mean one (the M/M/c-style setting used by the
    /// paper's Section VI experiments and by Snavely et al.).
    Exponential,
}

/// Parameters of a latency experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyConfig {
    /// Mean arrivals per cycle. May exceed the machine's maximum
    /// throughput, turning the run into a saturation (maximum-throughput)
    /// experiment — Figure 6.
    pub arrival_rate: f64,
    /// Completions counted into the measurement.
    pub measured_jobs: u64,
    /// Completions discarded as warm-up before measurement starts.
    pub warmup_jobs: u64,
    /// Job size distribution.
    pub sizes: SizeDist,
    /// RNG seed (arrivals, types, sizes).
    pub seed: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            arrival_rate: 1.0,
            measured_jobs: 20_000,
            warmup_jobs: 2_000,
            sizes: SizeDist::Exponential,
            seed: 0xD15C,
        }
    }
}

/// Measured outcome of a latency experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Mean time from arrival to completion.
    pub mean_turnaround: f64,
    /// Mean number of busy contexts (the paper's "processor utilization").
    pub utilization: f64,
    /// Fraction of time the system held no jobs at all.
    pub empty_fraction: f64,
    /// Work completed per cycle over the measurement window (equals the
    /// arrival rate for stable systems; the achieved maximum throughput in
    /// saturation).
    pub throughput: f64,
    /// Time-averaged number of jobs in the system.
    pub mean_jobs_in_system: f64,
    /// Number of completions measured.
    pub completed: u64,
}

/// Runs one latency experiment.
///
/// # Errors
///
/// Returns a description of the first invalid parameter (non-positive
/// arrival rate or zero measured jobs).
///
/// # Examples
///
/// ```
/// use queueing::{
///     run_latency_experiment, ContentionModel, FcfsScheduler, LatencyConfig, SizeDist,
/// };
///
/// let rates = ContentionModel::new(vec![1.0], 0.0, 4);
/// let report = run_latency_experiment(
///     &rates,
///     &mut FcfsScheduler,
///     &LatencyConfig {
///         arrival_rate: 3.5,
///         measured_jobs: 5_000,
///         warmup_jobs: 500,
///         sizes: SizeDist::Exponential,
///         seed: 7,
///     },
/// )
/// .unwrap();
/// assert!(report.mean_turnaround > 1.0); // queueing adds to service time
/// ```
pub fn run_latency_experiment(
    rates: &dyn RateModel,
    scheduler: &mut dyn Scheduler,
    config: &LatencyConfig,
) -> Result<LatencyReport, String> {
    if config.arrival_rate <= 0.0 || !config.arrival_rate.is_finite() {
        return Err(format!(
            "arrival rate {} must be positive",
            config.arrival_rate
        ));
    }
    if config.measured_jobs == 0 {
        return Err("measured_jobs must be positive".into());
    }
    if !rates.supports_partial() {
        return Err(
            "latency experiments pass through partially loaded states; the rate \
             model must support partial multisets"
                .into(),
        );
    }
    let n_types = rates.num_types();
    let contexts = rates.contexts();
    let mut rng = SplitMix64::new(config.seed);

    let mut pool = JobPool::new(n_types);
    let mut now = 0.0f64;
    let mut next_arrival = rng.next_exp(1.0 / config.arrival_rate);
    let mut next_id: u64 = 0;

    let target = config.warmup_jobs + config.measured_jobs;
    let mut completed_total: u64 = 0;

    // Measurement accumulators (active after warm-up).
    let mut measuring = config.warmup_jobs == 0;
    let mut t_start = 0.0f64;
    let mut busy_time = 0.0f64;
    let mut empty_time = 0.0f64;
    let mut jobs_time = 0.0f64;
    let mut work_done = 0.0f64;
    let mut turnaround_sum = 0.0f64;
    let mut measured_completions: u64 = 0;

    while completed_total < target {
        if pool.is_empty() {
            // Idle until the next arrival.
            let dt = next_arrival - now;
            if measuring {
                empty_time += dt;
            }
            now = next_arrival;
            pool.insert(Job {
                id: next_id,
                ty: rng.next_range(n_types as u64) as usize,
                remaining: match config.sizes {
                    SizeDist::Deterministic => 1.0,
                    SizeDist::Exponential => rng.next_exp(1.0),
                },
                arrival: now,
            });
            next_id += 1;
            next_arrival = now + rng.next_exp(1.0 / config.arrival_rate);
            continue;
        }

        // Ask the policy for the running coschedule.
        let selection = scheduler.select(&mut pool, contexts, rates);
        debug_assert!(!selection.is_empty());
        let mut counts = vec![0u32; n_types];
        for &id in &selection {
            counts[pool.get(id).expect("selected job exists").ty] += 1;
        }
        // Per-job rates and earliest completion.
        let mut dt_complete = f64::INFINITY;
        let mut sel_rates = Vec::with_capacity(selection.len());
        for &id in &selection {
            let job = pool.get(id).expect("selected job exists");
            let r = rates.per_job_rate(&counts, job.ty);
            debug_assert!(r > 0.0, "running jobs must progress");
            dt_complete = dt_complete.min(job.remaining / r);
            sel_rates.push((id, r));
        }
        let dt = dt_complete.min(next_arrival - now);
        let end = now + dt;

        if measuring {
            busy_time += selection.len() as f64 * dt;
            jobs_time += pool.len() as f64 * dt;
            work_done += sel_rates.iter().map(|(_, r)| r * dt).sum::<f64>();
        }
        scheduler.observe(&counts, dt);

        // Advance running jobs; collect completions.
        for &(id, r) in &sel_rates {
            let job = pool.get(id).expect("selected job exists");
            let left = job.remaining - r * dt;
            pool.set_remaining(id, left);
        }
        for &(id, _) in &sel_rates {
            if pool.get(id).expect("job exists").remaining <= 1e-12 {
                let job = pool.remove(id);
                completed_total += 1;
                if measuring {
                    turnaround_sum += end - job.arrival;
                    measured_completions += 1;
                }
                if !measuring && completed_total >= config.warmup_jobs {
                    measuring = true;
                    t_start = end;
                }
            }
        }
        now = end;
        // Admit an arrival that falls exactly at or before the new time.
        if next_arrival <= now + 1e-15 {
            pool.insert(Job {
                id: next_id,
                ty: rng.next_range(n_types as u64) as usize,
                remaining: match config.sizes {
                    SizeDist::Deterministic => 1.0,
                    SizeDist::Exponential => rng.next_exp(1.0),
                },
                arrival: next_arrival,
            });
            next_id += 1;
            next_arrival = now + rng.next_exp(1.0 / config.arrival_rate);
        }
    }

    let elapsed = (now - t_start).max(1e-12);
    Ok(LatencyReport {
        mean_turnaround: turnaround_sum / measured_completions.max(1) as f64,
        utilization: busy_time / elapsed,
        empty_fraction: empty_time / elapsed,
        throughput: work_done / elapsed,
        mean_jobs_in_system: jobs_time / elapsed,
        completed: measured_completions,
    })
}

/// Parameters of a fixed-batch (makespan / maximum-throughput) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Jobs placed in the queue at time zero (types i.i.d. uniform).
    pub jobs: u64,
    /// Job size distribution.
    pub sizes: SizeDist,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a fixed-batch experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Time to drain the whole batch.
    pub makespan: f64,
    /// Total work divided by makespan — the paper's *maximum throughput*
    /// of the scheduler on a fixed workload.
    pub throughput: f64,
    /// Mean completion time over the batch.
    pub mean_turnaround: f64,
}

/// Runs a fixed-batch maximum-throughput experiment: `jobs` jobs are all
/// present at time zero and the machine runs until every one completes.
///
/// This matches the paper's Section III-A "maximum throughput experiment"
/// and its Figure 6 setup: because the *entire* batch must finish, a
/// scheduler that postpones unfavourable jobs pays for them at the end
/// (drained in bad coschedules) — the mechanism behind the paper's finding
/// that MAXIT gains nothing over FCFS.
///
/// # Errors
///
/// Returns a description of the first invalid parameter.
///
/// # Examples
///
/// ```
/// use queueing::{run_batch_experiment, BatchConfig, ContentionModel,
///                FcfsScheduler, SizeDist};
///
/// let rates = ContentionModel::new(vec![1.0], 0.0, 4);
/// let report = run_batch_experiment(
///     &rates,
///     &mut FcfsScheduler,
///     &BatchConfig { jobs: 1_000, sizes: SizeDist::Deterministic, seed: 1 },
/// )
/// .unwrap();
/// // Four unit-rate contexts: throughput ~4 work units per cycle.
/// assert!((report.throughput - 4.0).abs() < 0.05);
/// ```
pub fn run_batch_experiment(
    rates: &dyn RateModel,
    scheduler: &mut dyn Scheduler,
    config: &BatchConfig,
) -> Result<BatchReport, String> {
    if config.jobs == 0 {
        return Err("batch must contain at least one job".into());
    }
    if !rates.supports_partial() {
        return Err(
            "batch experiments drain through partially loaded states; the rate \
             model must support partial multisets"
                .into(),
        );
    }
    let n_types = rates.num_types();
    let contexts = rates.contexts();
    let mut rng = SplitMix64::new(config.seed);
    let mut pool = JobPool::new(n_types);
    let mut total_work = 0.0;
    for id in 0..config.jobs {
        let size = match config.sizes {
            SizeDist::Deterministic => 1.0,
            SizeDist::Exponential => rng.next_exp(1.0),
        };
        total_work += size;
        pool.insert(Job {
            id,
            ty: rng.next_range(n_types as u64) as usize,
            remaining: size,
            arrival: 0.0,
        });
    }

    let mut now = 0.0f64;
    let mut turnaround_sum = 0.0f64;
    while !pool.is_empty() {
        let selection = scheduler.select(&mut pool, contexts, rates);
        debug_assert!(!selection.is_empty());
        let mut counts = vec![0u32; n_types];
        for &id in &selection {
            counts[pool.get(id).expect("selected job exists").ty] += 1;
        }
        let mut dt = f64::INFINITY;
        let mut sel_rates = Vec::with_capacity(selection.len());
        for &id in &selection {
            let job = pool.get(id).expect("selected job exists");
            let r = rates.per_job_rate(&counts, job.ty);
            debug_assert!(r > 0.0, "running jobs must progress");
            dt = dt.min(job.remaining / r);
            sel_rates.push((id, r));
        }
        now += dt;
        scheduler.observe(&counts, dt);
        for &(id, r) in &sel_rates {
            let left = pool.get(id).expect("job exists").remaining - r * dt;
            pool.set_remaining(id, left);
        }
        for &(id, _) in &sel_rates {
            if pool.get(id).expect("job exists").remaining <= 1e-12 {
                let job = pool.remove(id);
                turnaround_sum += now - job.arrival;
            }
        }
    }
    Ok(BatchReport {
        makespan: now,
        throughput: total_work / now,
        mean_turnaround: turnaround_sum / config.jobs as f64,
    })
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::rates::ContentionModel;
    use crate::sched::{FcfsScheduler, MaxItScheduler, SrptScheduler};

    #[test]
    fn empty_batch_rejected() {
        let rates = ContentionModel::new(vec![1.0], 0.0, 2);
        let cfg = BatchConfig {
            jobs: 0,
            sizes: SizeDist::Deterministic,
            seed: 0,
        };
        assert!(run_batch_experiment(&rates, &mut FcfsScheduler, &cfg).is_err());
    }

    #[test]
    fn insensitive_batch_runs_at_capacity() {
        let rates = ContentionModel::new(vec![0.5, 0.5], 0.0, 4);
        let cfg = BatchConfig {
            jobs: 4_000,
            sizes: SizeDist::Deterministic,
            seed: 2,
        };
        let report = run_batch_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        assert!(
            (report.throughput - 2.0).abs() < 0.02,
            "{}",
            report.throughput
        );
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn maxit_gains_nothing_on_a_fixed_batch_of_insensitive_jobs() {
        // The paper's core argument in miniature: with a fixed batch, the
        // fast jobs MAXIT favours run out and the slow ones dominate the
        // tail, cancelling the early advantage.
        let rates = ContentionModel::new(vec![1.0, 0.25], 0.0, 2);
        let cfg = BatchConfig {
            jobs: 6_000,
            sizes: SizeDist::Deterministic,
            seed: 5,
        };
        let fcfs = run_batch_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        let maxit = run_batch_experiment(&rates, &mut MaxItScheduler, &cfg).unwrap();
        let rel = (maxit.throughput - fcfs.throughput) / fcfs.throughput;
        assert!(
            rel.abs() < 0.02,
            "insensitive jobs: MAXIT {} vs FCFS {} must coincide",
            maxit.throughput,
            fcfs.throughput
        );
    }

    #[test]
    fn batch_turnaround_favours_srpt() {
        let rates = ContentionModel::new(vec![1.0], 0.0, 1);
        let cfg = BatchConfig {
            jobs: 400,
            sizes: SizeDist::Exponential,
            seed: 9,
        };
        let fcfs = run_batch_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        let srpt = run_batch_experiment(&rates, &mut SrptScheduler, &cfg).unwrap();
        // Same makespan (work conserving single server)...
        assert!((fcfs.makespan - srpt.makespan).abs() < 1e-6);
        // ...but SRPT strictly improves mean turnaround (Schrage).
        assert!(srpt.mean_turnaround < fcfs.mean_turnaround);
    }

    #[test]
    fn batch_is_deterministic() {
        let rates = ContentionModel::new(vec![1.0, 0.5], 0.2, 4);
        let cfg = BatchConfig {
            jobs: 1_000,
            sizes: SizeDist::Exponential,
            seed: 3,
        };
        let a = run_batch_experiment(&rates, &mut MaxItScheduler, &cfg).unwrap();
        let b = run_batch_experiment(&rates, &mut MaxItScheduler, &cfg).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::ContentionModel;
    use crate::sched::{FcfsScheduler, MaxItScheduler, SrptScheduler};

    fn single_server_rates() -> ContentionModel {
        ContentionModel::new(vec![1.0], 0.0, 1)
    }

    #[test]
    fn rejects_bad_parameters() {
        let rates = single_server_rates();
        let mut cfg = LatencyConfig {
            arrival_rate: 0.0,
            ..Default::default()
        };
        assert!(run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).is_err());
        cfg.arrival_rate = 1.0;
        cfg.measured_jobs = 0;
        assert!(run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).is_err());
    }

    #[test]
    fn mm1_turnaround_matches_theory() {
        // M/M/1: W = 1 / (mu - lambda). With mu = 1, lambda = 0.5: W = 2.
        let rates = single_server_rates();
        let cfg = LatencyConfig {
            arrival_rate: 0.5,
            measured_jobs: 60_000,
            warmup_jobs: 5_000,
            sizes: SizeDist::Exponential,
            seed: 11,
        };
        let report = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        assert!(
            (report.mean_turnaround - 2.0).abs() < 0.1,
            "W = {}, expected ~2.0",
            report.mean_turnaround
        );
        // Stable system: throughput equals arrival rate.
        assert!((report.throughput - 0.5).abs() < 0.02);
        // Utilisation of an M/M/1 at rho = 0.5.
        assert!((report.utilization - 0.5).abs() < 0.02);
        // Empty fraction = 1 - rho for M/M/1.
        assert!((report.empty_fraction - 0.5).abs() < 0.02);
    }

    #[test]
    fn littles_law_holds() {
        let rates = ContentionModel::new(vec![1.0, 1.0], 0.0, 2);
        let cfg = LatencyConfig {
            arrival_rate: 1.2,
            measured_jobs: 40_000,
            warmup_jobs: 4_000,
            sizes: SizeDist::Exponential,
            seed: 3,
        };
        let report = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        // L = lambda * W (use measured throughput as effective lambda).
        let lw = report.throughput * report.mean_turnaround;
        let rel = (report.mean_jobs_in_system - lw).abs() / report.mean_jobs_in_system;
        assert!(
            rel < 0.05,
            "L {} vs lambda*W {}",
            report.mean_jobs_in_system,
            lw
        );
    }

    #[test]
    fn deterministic_sizes_have_lower_variance_waiting() {
        // M/D/1 waits less than M/M/1 at equal load.
        let rates = single_server_rates();
        let base = LatencyConfig {
            arrival_rate: 0.7,
            measured_jobs: 40_000,
            warmup_jobs: 4_000,
            sizes: SizeDist::Exponential,
            seed: 5,
        };
        let exp = run_latency_experiment(&rates, &mut FcfsScheduler, &base).unwrap();
        let det_cfg = LatencyConfig {
            sizes: SizeDist::Deterministic,
            ..base
        };
        let det = run_latency_experiment(&rates, &mut FcfsScheduler, &det_cfg).unwrap();
        assert!(
            det.mean_turnaround < exp.mean_turnaround,
            "M/D/1 {} must wait less than M/M/1 {}",
            det.mean_turnaround,
            exp.mean_turnaround
        );
    }

    #[test]
    fn srpt_beats_fcfs_on_turnaround() {
        // Single server, exponential sizes: SRPT is optimal for mean
        // turnaround (Schrage's theorem).
        let rates = single_server_rates();
        let cfg = LatencyConfig {
            arrival_rate: 0.8,
            measured_jobs: 40_000,
            warmup_jobs: 4_000,
            sizes: SizeDist::Exponential,
            seed: 9,
        };
        let fcfs = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        let srpt = run_latency_experiment(&rates, &mut SrptScheduler, &cfg).unwrap();
        assert!(
            srpt.mean_turnaround < fcfs.mean_turnaround,
            "SRPT {} must beat FCFS {}",
            srpt.mean_turnaround,
            fcfs.mean_turnaround
        );
    }

    #[test]
    fn saturation_throughput_is_capacity_bound() {
        // lambda far above capacity: achieved throughput caps at the
        // service capacity (1.0 for a single unit-rate server).
        let rates = single_server_rates();
        let cfg = LatencyConfig {
            arrival_rate: 3.0,
            measured_jobs: 20_000,
            warmup_jobs: 2_000,
            sizes: SizeDist::Deterministic,
            seed: 13,
        };
        let report = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        assert!(
            (report.throughput - 1.0).abs() < 0.02,
            "{}",
            report.throughput
        );
        assert!(report.empty_fraction < 1e-9);
        assert!((report.utilization - 1.0).abs() < 1e-6);
    }

    #[test]
    fn work_conserving_policies_agree_on_utilization_under_low_load() {
        let rates = ContentionModel::new(vec![1.0, 0.5], 0.1, 2);
        let cfg = LatencyConfig {
            arrival_rate: 0.3,
            measured_jobs: 20_000,
            warmup_jobs: 2_000,
            sizes: SizeDist::Exponential,
            seed: 21,
        };
        let fcfs = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        let maxit = run_latency_experiment(&rates, &mut MaxItScheduler, &cfg).unwrap();
        // At low load scheduling barely matters (paper, Section VI points
        // A/B): both see nearly the same utilisation.
        let rel = (fcfs.utilization - maxit.utilization).abs() / fcfs.utilization;
        assert!(
            rel < 0.05,
            "fcfs {} vs maxit {}",
            fcfs.utilization,
            maxit.utilization
        );
    }

    #[test]
    fn experiment_is_reproducible() {
        let rates = single_server_rates();
        let cfg = LatencyConfig::default();
        let a = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        let b = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
