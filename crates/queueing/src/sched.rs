//! The four scheduling policies of the paper's Section VI.

use symbiosis::RateModel;

use crate::job::{JobId, JobPool};

/// A scheduling policy: at every event it picks which of the jobs in the
/// system run on the machine's contexts.
///
/// The machine's context count is passed explicitly so that
/// workload-agnostic policies (FCFS) need no rate model at all; the other
/// policies consult `rates` to compare candidate coschedules.
pub trait Scheduler {
    /// Policy name — the registry key used by `session::Policy::by_name`
    /// and printed in reports. Uppercase, matching the paper's labels.
    fn name(&self) -> &'static str;

    /// Selects up to `contexts` job ids from the pool to run next. All
    /// four paper policies are work-conserving: they run
    /// `min(contexts, jobs in system)` jobs.
    fn select(&mut self, pool: &mut JobPool, contexts: usize, rates: &dyn RateModel) -> Vec<JobId>;

    /// Observes that the multiset `counts` ran for `dt` time units
    /// (used by MAXTP to track realised coschedule fractions).
    fn observe(&mut self, _counts: &[u32], _dt: f64) {}
}

/// Enumerates all multisets of `size` jobs drawable from `avail` (per-type
/// availability), as count vectors.
///
/// Edge cases: `size == 0` yields exactly the empty (all-zero) multiset;
/// `size` above the total availability yields nothing; an empty `avail`
/// yields the empty multiset for `size == 0` and nothing otherwise.
///
/// # Examples
///
/// ```
/// let all = queueing::sched::feasible_multisets(&[2, 1], 2);
/// assert_eq!(all, vec![vec![2, 0], vec![1, 1]]);
/// ```
pub fn feasible_multisets(avail: &[u32], size: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current = vec![0u32; avail.len()];
    fill(&mut out, &mut current, avail, 0, size);
    out
}

fn fill(out: &mut Vec<Vec<u32>>, current: &mut Vec<u32>, avail: &[u32], ty: usize, left: u32) {
    if ty == avail.len() {
        if left == 0 {
            out.push(current.clone());
        }
        return;
    }
    let remaining_capacity: u32 = avail[ty + 1..].iter().sum();
    let min_here = left.saturating_sub(remaining_capacity);
    let max_here = left.min(avail[ty]);
    for c in (min_here..=max_here).rev() {
        current[ty] = c;
        fill(out, current, avail, ty + 1, left - c);
        current[ty] = 0;
    }
}

/// Picks the oldest job of each type according to a multiset of counts.
fn jobs_for_counts_oldest(pool: &mut JobPool, counts: &[u32]) -> Vec<JobId> {
    let mut out = Vec::new();
    for (ty, &c) in counts.iter().enumerate() {
        if c > 0 {
            out.extend(pool.oldest_of_type(ty, c as usize));
        }
    }
    out
}

/// First-come first-served: run the `K` oldest jobs in the system.
///
/// The paper's baseline; needs no knowledge about the workload — only the
/// context count it is handed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn select(
        &mut self,
        pool: &mut JobPool,
        contexts: usize,
        _rates: &dyn RateModel,
    ) -> Vec<JobId> {
        pool.iter_fifo().take(contexts).collect()
    }
}

/// MAXIT: run the feasible coschedule with the highest instantaneous
/// throughput; ties go to the combination containing the oldest jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxItScheduler;

impl MaxItScheduler {
    /// Best feasible multiset by instantaneous throughput (ties: oldest
    /// jobs). Shared with the MAXTP fallback path.
    fn best_counts(pool: &mut JobPool, contexts: usize, rates: &dyn RateModel) -> Vec<u32> {
        let size = pool.len().min(contexts) as u32;
        let candidates = feasible_multisets(pool.counts(), size);
        debug_assert!(!candidates.is_empty());
        let mut best: Option<(f64, f64, Vec<u32>)> = None;
        for counts in candidates {
            let it = rates.instantaneous_throughput(&counts);
            // Tie-break: smaller total arrival time = older jobs.
            let need_age = match &best {
                Some((bit, _, _)) => (it - bit).abs() < 1e-12 || it > *bit,
                None => true,
            };
            if !need_age {
                continue;
            }
            let mut selected = Vec::new();
            for (ty, &c) in counts.iter().enumerate() {
                if c > 0 {
                    selected.extend(pool.oldest_of_type(ty, c as usize));
                }
            }
            let age: f64 = selected
                .iter()
                .map(|&id| pool.get(id).expect("selected job exists").arrival)
                .sum();
            let better = match &best {
                None => true,
                Some((bit, bage, _)) => {
                    it > bit + 1e-12 || ((it - bit).abs() <= 1e-12 && age < *bage)
                }
            };
            if better {
                best = Some((it, age, counts));
            }
        }
        best.expect("at least one candidate").2
    }
}

impl Scheduler for MaxItScheduler {
    fn name(&self) -> &'static str {
        "MAXIT"
    }

    fn select(&mut self, pool: &mut JobPool, contexts: usize, rates: &dyn RateModel) -> Vec<JobId> {
        let counts = Self::best_counts(pool, contexts, rates);
        jobs_for_counts_oldest(pool, &counts)
    }
}

/// SRPT: run the combination minimising the total remaining execution time,
/// accounting for each job's speed inside that particular combination.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrptScheduler;

impl Scheduler for SrptScheduler {
    fn name(&self) -> &'static str {
        "SRPT"
    }

    fn select(&mut self, pool: &mut JobPool, contexts: usize, rates: &dyn RateModel) -> Vec<JobId> {
        let size = pool.len().min(contexts) as u32;
        let candidates = feasible_multisets(pool.counts(), size);
        let mut best: Option<(f64, Vec<u32>)> = None;
        for counts in candidates {
            let mut total_time = 0.0;
            for (ty, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let rate = rates.per_job_rate(&counts, ty);
                    total_time += pool.shortest_remaining_sum(ty, c as usize) / rate;
                }
            }
            if best.as_ref().is_none_or(|(bt, _)| total_time < *bt) {
                best = Some((total_time, counts));
            }
        }
        let counts = best.expect("at least one candidate").1;
        let mut out = Vec::new();
        for (ty, &c) in counts.iter().enumerate() {
            if c > 0 {
                out.extend(pool.shortest_of_type(ty, c as usize));
            }
        }
        out
    }
}

/// MAXTP: follow the offline-optimal coschedule time fractions from the
/// linear program (Section IV); pick the target coschedule that is furthest
/// behind its ideal fraction; fall back to MAXIT when no target is
/// composable from the jobs in the system.
#[derive(Debug, Clone)]
pub struct MaxTpScheduler {
    /// `(counts, ideal fraction)` for every coschedule the LP selected.
    targets: Vec<(Vec<u32>, f64)>,
    /// Time actually spent in each target so far.
    spent: Vec<f64>,
    /// Total observed time.
    total: f64,
}

impl MaxTpScheduler {
    /// Creates the scheduler from LP-optimal `(coschedule counts, time
    /// fraction)` pairs; entries with non-positive fractions are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no positive-fraction target remains.
    pub fn new(targets: Vec<(Vec<u32>, f64)>) -> Self {
        let targets: Vec<(Vec<u32>, f64)> =
            targets.into_iter().filter(|(_, f)| *f > 1e-12).collect();
        assert!(
            !targets.is_empty(),
            "MAXTP needs at least one coschedule with positive fraction"
        );
        let n = targets.len();
        MaxTpScheduler {
            targets,
            spent: vec![0.0; n],
            total: 0.0,
        }
    }

    /// The LP targets (counts, ideal fraction).
    pub fn targets(&self) -> &[(Vec<u32>, f64)] {
        &self.targets
    }
}

impl Scheduler for MaxTpScheduler {
    fn name(&self) -> &'static str {
        "MAXTP"
    }

    fn select(&mut self, pool: &mut JobPool, contexts: usize, rates: &dyn RateModel) -> Vec<JobId> {
        let avail = pool.counts();
        // Deficit = how far behind its ideal share this target is.
        let mut best: Option<(f64, usize)> = None;
        for (i, (counts, ideal)) in self.targets.iter().enumerate() {
            let composable = counts.iter().zip(avail).all(|(&need, &have)| need <= have);
            if !composable {
                continue;
            }
            let deficit = ideal * self.total.max(1e-9) - self.spent[i];
            if best.is_none_or(|(bd, _)| deficit > bd) {
                best = Some((deficit, i));
            }
        }
        match best {
            Some((_, i)) => {
                let counts = self.targets[i].0.clone();
                jobs_for_counts_oldest(pool, &counts)
            }
            None => {
                let counts = MaxItScheduler::best_counts(pool, contexts, rates);
                jobs_for_counts_oldest(pool, &counts)
            }
        }
    }

    fn observe(&mut self, counts: &[u32], dt: f64) {
        self.total += dt;
        for (i, (target, _)) in self.targets.iter().enumerate() {
            if target == counts {
                self.spent[i] += dt;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::rates::ContentionModel;

    fn pool_with(types: &[usize], num_types: usize) -> JobPool {
        let mut pool = JobPool::new(num_types);
        for (i, &ty) in types.iter().enumerate() {
            pool.insert(Job {
                id: i as JobId,
                ty,
                remaining: 1.0,
                arrival: i as f64,
            });
        }
        pool
    }

    #[test]
    fn feasible_multisets_respect_availability() {
        let all = feasible_multisets(&[2, 1, 0], 2);
        assert_eq!(all, vec![vec![2, 0, 0], vec![1, 1, 0]]);
        let none = feasible_multisets(&[1, 0], 2);
        assert!(none.is_empty());
        let exact = feasible_multisets(&[1, 1], 2);
        assert_eq!(exact, vec![vec![1, 1]]);
    }

    #[test]
    fn feasible_multisets_edge_cases() {
        // Size 0: exactly the empty multiset, regardless of availability.
        assert_eq!(feasible_multisets(&[2, 1], 0), vec![vec![0, 0]]);
        assert_eq!(feasible_multisets(&[0, 0], 0), vec![vec![0, 0]]);
        // No types at all.
        assert_eq!(feasible_multisets(&[], 0), vec![Vec::<u32>::new()]);
        assert!(feasible_multisets(&[], 3).is_empty());
        // Size above total availability: nothing is feasible.
        assert!(feasible_multisets(&[1, 1], 3).is_empty());
        assert!(feasible_multisets(&[0, 0], 1).is_empty());
    }

    /// Property check over deterministic pseudo-random availabilities:
    /// every returned multiset is within bounds and sums to `size`, the
    /// enumeration is duplicate-free, and its cardinality matches a direct
    /// dynamic-programming count.
    #[test]
    fn feasible_multisets_match_counting_dp() {
        fn dp_count(avail: &[u32], size: u32) -> u64 {
            let mut ways = vec![0u64; size as usize + 1];
            ways[0] = 1;
            for &a in avail {
                let mut next = vec![0u64; size as usize + 1];
                for (s, &w) in ways.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    for c in 0..=a.min(size - s as u32) {
                        next[s + c as usize] += w;
                    }
                }
                ways = next;
            }
            ways[size as usize]
        }

        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let n_types = (next() % 4 + 1) as usize;
            let avail: Vec<u32> = (0..n_types).map(|_| next() % 4).collect();
            let total: u32 = avail.iter().sum();
            for size in 0..=total + 1 {
                let all = feasible_multisets(&avail, size);
                assert_eq!(
                    all.len() as u64,
                    dp_count(&avail, size),
                    "{avail:?} size {size}"
                );
                let mut seen = std::collections::HashSet::new();
                for m in &all {
                    assert_eq!(m.len(), avail.len());
                    assert_eq!(m.iter().sum::<u32>(), size);
                    assert!(m.iter().zip(&avail).all(|(&c, &a)| c <= a));
                    assert!(seen.insert(m.clone()), "duplicate {m:?}");
                }
            }
        }
    }

    #[test]
    fn fcfs_takes_oldest() {
        let rates = ContentionModel::new(vec![1.0, 1.0], 0.0, 2);
        let mut pool = pool_with(&[0, 1, 0, 1], 2);
        let sel = FcfsScheduler.select(&mut pool, 2, &rates);
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn maxit_prefers_high_throughput_mix() {
        // Type 0 runs at 1.0, type 1 at 0.1; with no contention MAXIT picks
        // two type-0 jobs over mixing.
        let rates = ContentionModel::new(vec![1.0, 0.1], 0.0, 2);
        let mut pool = pool_with(&[1, 0, 0, 1], 2);
        let sel = MaxItScheduler.select(&mut pool, 2, &rates);
        let types: Vec<usize> = sel.iter().map(|&id| pool.get(id).unwrap().ty).collect();
        assert_eq!(types, vec![0, 0]);
    }

    #[test]
    fn maxit_breaks_ties_by_age() {
        let rates = ContentionModel::new(vec![1.0, 1.0], 0.0, 1);
        let mut pool = pool_with(&[1, 0], 2);
        // Both singleton coschedules have it = 1.0; the older job (id 0,
        // type 1) must win.
        let sel = MaxItScheduler.select(&mut pool, 1, &rates);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn srpt_picks_shortest_jobs() {
        let rates = ContentionModel::new(vec![1.0], 0.0, 1);
        let mut pool = JobPool::new(1);
        pool.insert(Job {
            id: 0,
            ty: 0,
            remaining: 5.0,
            arrival: 0.0,
        });
        pool.insert(Job {
            id: 1,
            ty: 0,
            remaining: 0.5,
            arrival: 1.0,
        });
        let sel = SrptScheduler.select(&mut pool, 1, &rates);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn srpt_accounts_for_coschedule_speed() {
        // One context. Type 0 job has 1.0 work at rate 1.0 (time 1.0);
        // type 1 job has 0.5 work at rate 0.25 (time 2.0). SRPT must pick
        // the type-0 job despite its larger remaining work.
        let rates = ContentionModel::new(vec![1.0, 0.25], 0.0, 1);
        let mut pool = JobPool::new(2);
        pool.insert(Job {
            id: 0,
            ty: 1,
            remaining: 0.5,
            arrival: 0.0,
        });
        pool.insert(Job {
            id: 1,
            ty: 0,
            remaining: 1.0,
            arrival: 1.0,
        });
        let sel = SrptScheduler.select(&mut pool, 1, &rates);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn maxtp_follows_targets_and_tracks_deficits() {
        let rates = ContentionModel::new(vec![1.0, 1.0], 0.0, 2);
        let mut sched = MaxTpScheduler::new(vec![
            (vec![2, 0], 0.5),
            (vec![0, 2], 0.5),
            (vec![1, 1], 0.0), // dropped
        ]);
        assert_eq!(sched.targets().len(), 2);
        let mut pool = pool_with(&[0, 0, 1, 1], 2);
        // First selection: both targets composable with zero deficit delta;
        // run one, observe, and the other should be picked next.
        let sel1 = sched.select(&mut pool, 2, &rates);
        let t1 = pool.get(sel1[0]).unwrap().ty;
        let counts1 = if t1 == 0 { vec![2, 0] } else { vec![0, 2] };
        sched.observe(&counts1, 1.0);
        let sel2 = sched.select(&mut pool, 2, &rates);
        let t2 = pool.get(sel2[0]).unwrap().ty;
        assert_ne!(t1, t2, "the lagging target must be chosen next");
    }

    #[test]
    fn maxtp_falls_back_to_maxit() {
        let rates = ContentionModel::new(vec![1.0, 0.1], 0.0, 2);
        let mut sched = MaxTpScheduler::new(vec![(vec![2, 0], 1.0)]);
        // Only type-1 jobs present: target not composable.
        let mut pool = pool_with(&[1, 1], 2);
        let sel = sched.select(&mut pool, 2, &rates);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive fraction")]
    fn maxtp_rejects_empty_targets() {
        let _ = MaxTpScheduler::new(vec![(vec![1, 0], 0.0)]);
    }

    #[test]
    fn partial_load_runs_everything() {
        let rates = ContentionModel::new(vec![1.0, 1.0], 0.1, 4);
        let mut pool = pool_with(&[0, 1], 2);
        for sched in [
            &mut FcfsScheduler as &mut dyn Scheduler,
            &mut MaxItScheduler,
            &mut SrptScheduler,
        ] {
            let sel = sched.select(&mut pool, 4, &rates);
            assert_eq!(sel.len(), 2, "{} must be work conserving", sched.name());
        }
    }

    #[test]
    fn scheduler_names_are_registry_keys() {
        // The names double as `session::Policy::by_name` keys; keep them
        // uppercase and distinct.
        let names = [
            FcfsScheduler.name(),
            MaxItScheduler.name(),
            SrptScheduler.name(),
            MaxTpScheduler::new(vec![(vec![1], 1.0)]).name(),
        ];
        assert_eq!(names, ["FCFS", "MAXIT", "SRPT", "MAXTP"]);
        for n in names {
            assert_eq!(n, n.to_uppercase());
        }
    }
}
