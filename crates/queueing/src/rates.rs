//! The interface between the latency simulator and performance data.

/// Per-coschedule execution rates, including *partial* coschedules.
///
/// Unlike the maximum-throughput analyses (which only ever see a fully
/// loaded machine), a latency experiment runs through periods where fewer
/// jobs than hardware contexts are present, so rates must be defined for
/// any multiset of 1..=contexts jobs. Implementations are typically backed
/// by simulation sweeps (the `workloads` crate) or analytic models (tests).
pub trait CoscheduleRates {
    /// Number of job types.
    fn num_types(&self) -> usize;

    /// Number of hardware contexts.
    fn contexts(&self) -> usize;

    /// Execution rate of *one* job of type `ty` when the multiset described
    /// by `counts` (length [`CoscheduleRates::num_types`], total between 1
    /// and [`CoscheduleRates::contexts`]) occupies the machine, in work
    /// units per cycle.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `counts[ty] == 0` or the multiset is
    /// empty/oversized.
    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64;

    /// Total work rate of the multiset: `sum_ty counts[ty] * per_job_rate`.
    fn instantaneous_throughput(&self, counts: &[u32]) -> f64 {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(ty, &c)| c as f64 * self.per_job_rate(counts, ty))
            .sum()
    }
}

/// A simple analytic rate model for tests and examples: each job runs at
/// `solo[ty]` scaled by a contention factor `1 / (1 + alpha * (n - 1))`
/// where `n` is the number of co-running jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    /// Solo rate per type.
    pub solo: Vec<f64>,
    /// Slowdown per additional co-runner.
    pub alpha: f64,
    /// Hardware contexts.
    pub contexts: usize,
}

impl ContentionModel {
    /// Creates the model; `solo` must be non-empty with positive rates.
    ///
    /// # Panics
    ///
    /// Panics on empty `solo`, non-positive rates, negative `alpha`, or
    /// zero `contexts`.
    pub fn new(solo: Vec<f64>, alpha: f64, contexts: usize) -> Self {
        assert!(!solo.is_empty(), "need at least one type");
        assert!(solo.iter().all(|&r| r > 0.0), "solo rates must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(contexts > 0, "need at least one context");
        ContentionModel {
            solo,
            alpha,
            contexts,
        }
    }
}

impl CoscheduleRates for ContentionModel {
    fn num_types(&self) -> usize {
        self.solo.len()
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert_eq!(counts.len(), self.solo.len(), "counts length mismatch");
        assert!(counts[ty] > 0, "type {ty} not present");
        let n: u32 = counts.iter().sum();
        assert!(
            n >= 1 && n as usize <= self.contexts,
            "multiset size {n} out of range"
        );
        self.solo[ty] / (1.0 + self.alpha * (n - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_rate_is_unscaled() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.25, 4);
        assert_eq!(m.per_job_rate(&[1, 0], 0), 1.0);
        assert_eq!(m.per_job_rate(&[0, 1], 1), 0.5);
    }

    #[test]
    fn contention_slows_jobs() {
        let m = ContentionModel::new(vec![1.0], 0.5, 4);
        assert!((m.per_job_rate(&[2], 0) - 1.0 / 1.5).abs() < 1e-12);
        assert!((m.per_job_rate(&[4], 0) - 1.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_sums_jobs() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.0, 4);
        let it = m.instantaneous_throughput(&[2, 2]);
        assert!((it - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn absent_type_panics() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.0, 4);
        let _ = m.per_job_rate(&[1, 0], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_multiset_panics() {
        let m = ContentionModel::new(vec![1.0], 0.0, 2);
        let _ = m.per_job_rate(&[3], 0);
    }
}
