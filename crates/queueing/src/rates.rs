//! The interface between the latency simulator and performance data.
//!
//! Since the `RateModel` unification the schedulers consume
//! [`symbiosis::RateModel`] directly; the old crate-local `CoscheduleRates`
//! trait survives as a deprecated alias so existing implementations keep
//! compiling unchanged (the method set is identical).

use symbiosis::RateModel;

/// Former name of the shared rate abstraction.
#[deprecated(
    since = "0.2.0",
    note = "use `symbiosis::RateModel` (identical method set)"
)]
pub use symbiosis::RateModel as CoscheduleRates;

/// A simple analytic rate model for tests and examples: each job runs at
/// `solo[ty]` scaled by a contention factor `1 / (1 + alpha * (n - 1))`
/// where `n` is the number of co-running jobs.
///
/// Equivalent to a [`symbiosis::AnalyticModel`] closure, kept as a named
/// type because the queueing validation suites construct it constantly.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    /// Solo rate per type.
    pub solo: Vec<f64>,
    /// Slowdown per additional co-runner.
    pub alpha: f64,
    /// Hardware contexts.
    pub contexts: usize,
}

impl ContentionModel {
    /// Creates the model; `solo` must be non-empty with positive rates.
    ///
    /// # Panics
    ///
    /// Panics on empty `solo`, non-positive rates, negative `alpha`, or
    /// zero `contexts`.
    pub fn new(solo: Vec<f64>, alpha: f64, contexts: usize) -> Self {
        assert!(!solo.is_empty(), "need at least one type");
        assert!(solo.iter().all(|&r| r > 0.0), "solo rates must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(contexts > 0, "need at least one context");
        ContentionModel {
            solo,
            alpha,
            contexts,
        }
    }
}

impl RateModel for ContentionModel {
    fn num_types(&self) -> usize {
        self.solo.len()
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert_eq!(counts.len(), self.solo.len(), "counts length mismatch");
        assert!(counts[ty] > 0, "type {ty} not present");
        let n: u32 = counts.iter().sum();
        assert!(
            n >= 1 && n as usize <= self.contexts,
            "multiset size {n} out of range"
        );
        self.solo[ty] / (1.0 + self.alpha * (n - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbiosis::assert_rate_model_conformance;

    #[test]
    fn solo_rate_is_unscaled() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.25, 4);
        assert_eq!(m.per_job_rate(&[1, 0], 0), 1.0);
        assert_eq!(m.per_job_rate(&[0, 1], 1), 0.5);
    }

    #[test]
    fn contention_slows_jobs() {
        let m = ContentionModel::new(vec![1.0], 0.5, 4);
        assert!((m.per_job_rate(&[2], 0) - 1.0 / 1.5).abs() < 1e-12);
        assert!((m.per_job_rate(&[4], 0) - 1.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_sums_jobs() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.0, 4);
        let it = m.instantaneous_throughput(&[2, 2]);
        assert!((it - 3.0).abs() < 1e-12);
    }

    #[test]
    fn contention_model_passes_shared_conformance() {
        assert_rate_model_conformance(&ContentionModel::new(vec![1.0, 0.5], 0.3, 3));
        assert_rate_model_conformance(&ContentionModel::new(vec![0.8], 0.0, 1));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn absent_type_panics() {
        let m = ContentionModel::new(vec![1.0, 0.5], 0.0, 4);
        let _ = m.per_job_rate(&[1, 0], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_multiset_panics() {
        let m = ContentionModel::new(vec![1.0], 0.0, 2);
        let _ = m.per_job_rate(&[3], 0);
    }
}
