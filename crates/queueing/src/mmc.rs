//! Analytic M/M/c queue — the closed forms behind Figure 4.
//!
//! The paper illustrates the turnaround-vs-throughput relationship with an
//! M/M/4 example: at `lambda = 3.5`, `mu = 1` the mean number of jobs in the
//! system is 8.7 and the turnaround time 2.5; raising `mu` by 3% (the
//! paper's optimal-scheduler gain) drops them to 7.3 and 2.1 — a 16%
//! turnaround reduction from a 3% throughput increase.

/// Analytic results for an M/M/c queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcQueue {
    /// Arrival rate `lambda`.
    pub lambda: f64,
    /// Per-server service rate `mu`.
    pub mu: f64,
    /// Number of servers `c`.
    pub servers: u32,
}

impl MmcQueue {
    /// Creates the queue descriptor.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is non-positive or the system is
    /// unstable (`lambda >= c * mu`).
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Self, String> {
        if lambda <= 0.0 || mu <= 0.0 || servers == 0 {
            return Err("lambda, mu and servers must be positive".into());
        }
        let q = MmcQueue {
            lambda,
            mu,
            servers,
        };
        if q.rho() >= 1.0 {
            return Err(format!(
                "unstable queue: lambda {lambda} >= capacity {}",
                mu * servers as f64
            ));
        }
        Ok(q)
    }

    /// Server utilisation `rho = lambda / (c mu)`.
    pub fn rho(&self) -> f64 {
        self.lambda / (self.mu * self.servers as f64)
    }

    /// Offered load in Erlangs, `a = lambda / mu`.
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Erlang-C: the probability an arriving job must queue.
    pub fn erlang_c(&self) -> f64 {
        let a = self.offered_load();
        let c = self.servers as usize;
        // Sum a^n / n! computed incrementally to avoid overflow.
        let mut term = 1.0; // a^0 / 0!
        let mut sum = term;
        for n in 1..c {
            term *= a / n as f64;
            sum += term;
        }
        let term_c = term * a / c as f64; // a^c / c!
        let tail = term_c / (1.0 - self.rho());
        tail / (sum + tail)
    }

    /// Mean number of jobs waiting (not in service).
    pub fn mean_queue_length(&self) -> f64 {
        self.erlang_c() * self.rho() / (1.0 - self.rho())
    }

    /// Mean number of jobs in the system (queued + in service), `L`.
    pub fn mean_jobs_in_system(&self) -> f64 {
        self.mean_queue_length() + self.offered_load()
    }

    /// Mean turnaround (sojourn) time, `W = L / lambda` (Little's law).
    pub fn mean_turnaround(&self) -> f64 {
        self.mean_jobs_in_system() / self.lambda
    }

    /// Probability the system is completely empty, `P0`.
    pub fn empty_probability(&self) -> f64 {
        let a = self.offered_load();
        let c = self.servers as usize;
        let mut term = 1.0;
        let mut sum = term;
        for n in 1..c {
            term *= a / n as f64;
            sum += term;
        }
        let term_c = term * a / c as f64;
        1.0 / (sum + term_c / (1.0 - self.rho()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_mm4_at_load_3_5() {
        // Section VI: lambda = 3.5, mu = 1, c = 4 -> L ~ 8.7, W ~ 2.5.
        let q = MmcQueue::new(3.5, 1.0, 4).unwrap();
        assert!(
            (q.mean_jobs_in_system() - 8.7).abs() < 0.15,
            "L = {}",
            q.mean_jobs_in_system()
        );
        assert!(
            (q.mean_turnaround() - 2.5).abs() < 0.05,
            "W = {}",
            q.mean_turnaround()
        );
    }

    #[test]
    fn paper_example_3_percent_speedup() {
        // mu = 1.03 -> L ~ 7.3, W ~ 2.1 (a 16% turnaround reduction).
        let base = MmcQueue::new(3.5, 1.0, 4).unwrap();
        let faster = MmcQueue::new(3.5, 1.03, 4).unwrap();
        assert!(
            (faster.mean_jobs_in_system() - 7.3).abs() < 0.2,
            "L = {}",
            faster.mean_jobs_in_system()
        );
        assert!(
            (faster.mean_turnaround() - 2.1).abs() < 0.06,
            "W = {}",
            faster.mean_turnaround()
        );
        let reduction = 1.0 - faster.mean_turnaround() / base.mean_turnaround();
        assert!(
            (reduction - 0.16).abs() < 0.03,
            "3% throughput -> ~16% turnaround, got {reduction}"
        );
    }

    #[test]
    fn mm1_special_case() {
        // c = 1 reduces to M/M/1: W = 1 / (mu - lambda).
        let q = MmcQueue::new(0.5, 1.0, 1).unwrap();
        assert!((q.mean_turnaround() - 2.0).abs() < 1e-9);
        assert!((q.erlang_c() - 0.5).abs() < 1e-9); // P(wait) = rho for M/M/1
        assert!((q.empty_probability() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn turnaround_diverges_near_saturation() {
        let w: Vec<f64> = [0.5, 0.9, 0.99]
            .iter()
            .map(|&rho| MmcQueue::new(4.0 * rho, 1.0, 4).unwrap().mean_turnaround())
            .collect();
        assert!(w[0] < w[1] && w[1] < w[2]);
        assert!(w[2] > 10.0, "near saturation W explodes, got {}", w[2]);
    }

    #[test]
    fn unstable_and_invalid_queues_rejected() {
        assert!(MmcQueue::new(4.0, 1.0, 4).is_err());
        assert!(MmcQueue::new(5.0, 1.0, 4).is_err());
        assert!(MmcQueue::new(-1.0, 1.0, 4).is_err());
        assert!(MmcQueue::new(1.0, 0.0, 4).is_err());
        assert!(MmcQueue::new(1.0, 1.0, 0).is_err());
    }

    #[test]
    fn erlang_c_is_a_probability() {
        for servers in [1u32, 2, 4, 8] {
            for rho in [0.1, 0.5, 0.9] {
                let q = MmcQueue::new(servers as f64 * rho, 1.0, servers).unwrap();
                let pc = q.erlang_c();
                assert!((0.0..=1.0).contains(&pc), "ErlangC {pc}");
            }
        }
    }

    #[test]
    fn empty_probability_falls_with_load() {
        let lo = MmcQueue::new(1.0, 1.0, 4).unwrap().empty_probability();
        let hi = MmcQueue::new(3.8, 1.0, 4).unwrap().empty_probability();
        assert!(lo > hi);
    }
}
