//! Latency experiments for symbiotic job scheduling (paper Section VI).
//!
//! The maximum-throughput analyses in the `symbiosis` crate ask how fast a
//! *fully loaded* machine can go. This crate asks the complementary
//! question the paper uses to reconcile its findings with earlier work:
//! what happens to **turnaround time**, **processor utilisation** and
//! **empty time** when jobs arrive over time?
//!
//! * [`run_latency_experiment`] — a discrete-event simulation with Poisson
//!   arrivals and coschedule-dependent service rates;
//! * the four policies of the paper: [`FcfsScheduler`], [`MaxItScheduler`]
//!   (maximise instantaneous throughput), [`SrptScheduler`] (shortest total
//!   remaining processing time) and [`MaxTpScheduler`] (follow the
//!   LP-optimal coschedule fractions, the paper's practical construction);
//! * [`MmcQueue`] — analytic M/M/c closed forms behind the Figure 4
//!   illustration (3% more throughput → 16% less turnaround near
//!   saturation).
//!
//! Performance data is supplied through the workspace-wide
//! [`symbiosis::RateModel`] trait (re-exported here), implemented by the
//! `workloads` crate for simulated tables and by [`ContentionModel`] for
//! analytic toy systems. The crate-local `CoscheduleRates` trait this crate
//! used to define is a deprecated alias of `RateModel`.
//!
//! # Examples
//!
//! ```
//! use queueing::{MmcQueue, ContentionModel, FcfsScheduler, LatencyConfig,
//!                run_latency_experiment, SizeDist};
//!
//! // The paper's M/M/4 worked example...
//! let q = MmcQueue::new(3.5, 1.0, 4).unwrap();
//! assert!((q.mean_turnaround() - 2.5).abs() < 0.05);
//!
//! // ...validated against the discrete-event simulator.
//! let rates = ContentionModel::new(vec![1.0], 0.0, 4);
//! let sim = run_latency_experiment(
//!     &rates,
//!     &mut FcfsScheduler,
//!     &LatencyConfig {
//!         arrival_rate: 3.5,
//!         measured_jobs: 30_000,
//!         warmup_jobs: 3_000,
//!         sizes: SizeDist::Exponential,
//!         seed: 1,
//!     },
//! )
//! .unwrap();
//! assert!((sim.mean_turnaround - q.mean_turnaround()).abs() < 0.25);
//! ```

pub mod job;
pub mod mmc;
pub mod rates;
pub mod sched;
pub mod sim;

pub use symbiosis::RateModel;

pub use job::{Job, JobId, JobPool};
pub use mmc::MmcQueue;
pub use rates::ContentionModel;
pub use sched::{FcfsScheduler, MaxItScheduler, MaxTpScheduler, Scheduler, SrptScheduler};
pub use sim::{
    run_batch_experiment, run_latency_experiment, BatchConfig, BatchReport, LatencyConfig,
    LatencyReport, SizeDist,
};

#[allow(deprecated)]
pub use rates::CoscheduleRates;
