//! Thin deprecated shims for the pre-`Session` free-function API.
//!
//! Every shim delegates to the engine function that now backs the
//! [`session`](::session) crate, so old call sites keep producing exactly
//! the numbers they always did — the deprecation only points new code at
//! the unified entry point.

use queueing::{BatchConfig, BatchReport, LatencyConfig, LatencyReport, Scheduler};
use symbiosis::{
    BottleneckFit, FairnessExperiment, FcfsOutcome, FcfsParams, HeterogeneityTable, JobSize,
    Objective, RateModel, Schedule, SymbiosisError, WorkloadRates, WorkloadVariability,
};

/// See [`symbiosis::optimal_schedule`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).policy(Policy::Optimal).run()"
)]
pub fn optimal_schedule(
    rates: &WorkloadRates,
    objective: Objective,
) -> Result<Schedule, SymbiosisError> {
    symbiosis::optimal_schedule(rates, objective)
}

/// See [`symbiosis::throughput_bounds`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).policies([Policy::Worst, Policy::Optimal]).run()"
)]
pub fn throughput_bounds(rates: &WorkloadRates) -> Result<(Schedule, Schedule), SymbiosisError> {
    symbiosis::throughput_bounds(rates)
}

/// See [`symbiosis::fcfs_throughput`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).policy(Policy::FcfsEvent).run()"
)]
pub fn fcfs_throughput(
    rates: &WorkloadRates,
    jobs: u64,
    sizes: JobSize,
    seed: u64,
) -> Result<FcfsOutcome, SymbiosisError> {
    symbiosis::fcfs_throughput(rates, jobs, sizes, seed)
}

/// See [`symbiosis::fcfs_throughput_markov`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).policy(Policy::FcfsMarkov).run()"
)]
pub fn fcfs_throughput_markov(rates: &WorkloadRates) -> Result<FcfsOutcome, SymbiosisError> {
    symbiosis::fcfs_throughput_markov(rates)
}

/// See [`symbiosis::analyze_variability`].
#[deprecated(
    since = "0.2.0",
    note = "use a Session with [Policy::Worst, Policy::FcfsEvent, Policy::Optimal] plus \
            symbiosis::variability spreads"
)]
pub fn analyze_variability(
    rates: &WorkloadRates,
    fcfs_params: FcfsParams,
) -> Result<WorkloadVariability, SymbiosisError> {
    symbiosis::analyze_variability(rates, fcfs_params)
}

/// See [`symbiosis::fairness_experiment`].
#[deprecated(
    since = "0.2.0",
    note = "run a Session on the original and rebalanced tables (see \
            paperbench::experiments::fairness)"
)]
pub fn fairness_experiment(
    rates: &WorkloadRates,
    fcfs_jobs: u64,
    seed: u64,
) -> Result<FairnessExperiment, SymbiosisError> {
    symbiosis::fairness_experiment(rates, fcfs_jobs, seed)
}

/// See [`symbiosis::heterogeneity_table`].
#[deprecated(
    since = "0.2.0",
    note = "use Session fraction rows with symbiosis::heterogeneity_table_from_parts"
)]
pub fn heterogeneity_table(
    rates: &WorkloadRates,
    fcfs_jobs: u64,
    seed: u64,
) -> Result<HeterogeneityTable, SymbiosisError> {
    symbiosis::heterogeneity_table(rates, fcfs_jobs, seed)
}

/// See [`symbiosis::fit_linear_bottleneck`].
#[deprecated(since = "0.2.0", note = "use symbiosis::fit_linear_bottleneck")]
pub fn fit_linear_bottleneck(rates: &WorkloadRates) -> Result<BottleneckFit, SymbiosisError> {
    symbiosis::fit_linear_bottleneck(rates)
}

/// See [`queueing::run_latency_experiment`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).latency(config).policies(Policy::LATENCY).run()"
)]
pub fn run_latency_experiment(
    rates: &dyn RateModel,
    scheduler: &mut dyn Scheduler,
    config: &LatencyConfig,
) -> Result<LatencyReport, String> {
    queueing::run_latency_experiment(rates, scheduler, config)
}

/// See [`queueing::run_batch_experiment`].
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().rates(..).policies(Policy::LATENCY).run()"
)]
pub fn run_batch_experiment(
    rates: &dyn RateModel,
    scheduler: &mut dyn Scheduler,
    config: &BatchConfig,
) -> Result<BatchReport, String> {
    queueing::run_batch_experiment(rates, scheduler, config)
}

/// Applies `f` to every item on up to `threads` OS threads, preserving
/// input order in the output.
///
/// The last trace of the pre-sweep fan-out style: every batch evaluation
/// in the workspace now flows through `Session::sweep()` (policy rows via
/// [`session::SweepBuilder::run`], custom per-workload analyses via
/// [`session::SweepBuilder::map`]), which shares the performance table and
/// aggregates through `session::SweepReport`. For raw parallel maps the
/// engine itself is public as [`session::WorkerPool`].
///
/// # Panics
///
/// Propagates panics from `f`.
#[deprecated(
    since = "0.2.0",
    note = "use Session::sweep() (or session::WorkerPool::map for raw fan-out)"
)]
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    session::WorkerPool::new(threads).map(items, |_, item| f(item))
}
