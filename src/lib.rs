//! Reproduction of *"Revisiting Symbiotic Job Scheduling"* (Eyerman,
//! Michaud, Rogiest — ISPASS 2015) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's five libraries so examples
//! and downstream users can depend on a single crate:
//!
//! * [`lp`] — dense two-phase simplex and linear-algebra kernels;
//! * [`simproc`] — the SMT / multicore performance simulator substrate;
//! * [`workloads`] — the 12 SPEC-CPU2006-like benchmark profiles and the
//!   coschedule performance tables;
//! * [`symbiosis`] — the paper's contribution: optimal/worst/FCFS average
//!   throughput and the Section V analyses;
//! * [`queueing`] — the Section VI latency experiments (FCFS / MAXIT /
//!   SRPT / MAXTP schedulers, analytic M/M/c).
//!
//! The experiment harness that regenerates every paper figure/table lives
//! in the `paperbench` crate (binaries `fig1`..`fig6`, `table2`,
//! `n8_sensitivity`, `fairness`, `sec7_policies`, `all`).
//!
//! # Quick start
//!
//! Compute how much a perfect symbiosis-aware scheduler could speed up a
//! fully loaded 4-way SMT machine running a 4-program mix:
//!
//! ```no_run
//! use symbiotic_scheduling::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(MachineConfig::smt4())?;
//! let table = PerfTable::build(&machine, &spec2006(), 8)?;
//! // bzip2 + hmmer + mcf + xalancbmk
//! let rates = table.workload_rates(&[0, 5, 7, 11])?;
//! let best = optimal_schedule(&rates, Objective::MaxThroughput)?;
//! let fcfs = fcfs_throughput(&rates, 40_000, JobSize::Deterministic, 42)?;
//! println!(
//!     "optimal scheduler gains {:.1}% over FCFS",
//!     100.0 * (best.throughput / fcfs.throughput - 1.0)
//! );
//! # Ok(())
//! # }
//! ```

pub use lp;
pub use queueing;
pub use simproc;
pub use symbiosis;
pub use workloads;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use queueing::{
        run_latency_experiment, ContentionModel, CoscheduleRates, FcfsScheduler, LatencyConfig,
        MaxItScheduler, MaxTpScheduler, MmcQueue, Scheduler, SizeDist, SrptScheduler,
    };
    pub use simproc::{
        BenchmarkProfile, FetchPolicy, Machine, MachineConfig, RobPartitioning,
    };
    pub use symbiosis::{
        analyze_variability, enumerate_coschedules, enumerate_workloads, fairness_experiment,
        fcfs_throughput, fcfs_throughput_markov, fit_linear_bottleneck, heterogeneity_table,
        optimal_schedule, throughput_bounds, Coschedule, FcfsParams, JobSize, Objective,
        WorkloadRates,
    };
    pub use workloads::{spec2006, spec_names, spec_profile, PerfTable};
}
