//! Reproduction of *"Revisiting Symbiotic Job Scheduling"* (Eyerman,
//! Michaud, Rogiest — ISPASS 2015) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's libraries so examples and
//! downstream users can depend on a single crate:
//!
//! * [`session`] — **the public API**: the [`prelude::Session`] entry
//!   point, the [`prelude::Policy`] registry, uniform
//!   [`prelude::PolicyReport`] rows, and the batch `Session::sweep`
//!   surface ([`prelude::SweepReport`], [`prelude::WorkerPool`],
//!   `session::stats`);
//! * [`symbiosis`] — the analyses behind it: the [`prelude::RateModel`]
//!   abstraction, LP optimal/worst throughput, Markov/event FCFS, and the
//!   Section V studies;
//! * [`lp`] — dense two-phase simplex and linear-algebra kernels;
//! * [`simproc`] — the SMT / multicore performance simulator substrate;
//! * [`workloads`] — the 12 SPEC-CPU2006-like benchmark profiles and the
//!   coschedule performance tables;
//! * [`predict`] — model-predicted rate sources: stratified coschedule
//!   sampling ([`prelude::SamplePlan`]), pluggable interference fitters
//!   ([`prelude::Fitter`]), and the refittable
//!   [`prelude::PredictedModel`] that stands in for measurement;
//! * [`queueing`] — the Section VI latency machinery (FCFS / MAXIT /
//!   SRPT / MAXTP schedulers, analytic M/M/c);
//! * [`dist`] — the sharded sweep coordinator: a length-prefixed,
//!   checksummed wire protocol over TCP (or in-process loopback), a
//!   fault-tolerant [`prelude::Coordinator`] that re-queues chunks lost
//!   to dead workers (with backoff, strike-based quarantine and hedged
//!   straggler re-dispatch), [`prelude::run_worker`] for the worker
//!   side, a seeded fault-injection layer ([`prelude::ChaosPlan`] /
//!   [`prelude::ChaosTransport`]) for testing all of it, and a
//!   deterministic merge whose report is bitwise-identical to a
//!   single-process `Session::sweep`;
//! * [`serve`] — the online scheduling service: a bounded
//!   [`prelude::Queue`] front end, placers ([`prelude::Placer`]) pricing
//!   free contexts through the live model, the digital-twin refit
//!   loop ([`prelude::TwinLoop`]) closed against ground truth by
//!   [`prelude::run_serve`], and graceful degradation — a model-health
//!   circuit breaker ([`prelude::BreakerConfig`]) that falls back to
//!   FCFS while the twin is mispricing.
//!
//! The experiment harness that regenerates every paper figure/table lives
//! in the `paperbench` crate: an `Experiment` registry drives them all
//! through one binary (`paperbench <name>|all`, with thin per-experiment
//! compatibility binaries `fig1`..`fig6`, `table2`, `n8_sensitivity`,
//! `fairness`, `sec7_policies`, `all`).
//!
//! # Quick start
//!
//! Everything goes through a [`prelude::Session`]: pick a rate source
//! (a machine + workload to simulate, or any [`prelude::RateModel`]),
//! pick policies from the registry, run, and read uniform rows:
//!
//! ```no_run
//! use symbiotic_scheduling::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Session::builder()
//!     .machine(MachineConfig::smt4())
//!     .workload(&[0, 5, 7, 11]) // bzip2 + hmmer + mcf + xalancbmk
//!     .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
//!     .fcfs_jobs(40_000)
//!     .seed(42)
//!     .run()?;
//! println!("{report}");
//! println!(
//!     "optimal scheduler gains {:.1}% over FCFS",
//!     100.0 * (report.throughput(Policy::Optimal).unwrap()
//!         / report.throughput(Policy::FcfsEvent).unwrap()
//!         - 1.0)
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Rate sources need not come from the simulator — an analytic model (or a
//! [`prelude::CachedModel`] around an expensive predictor) plugs into the
//! same session:
//!
//! ```
//! use symbiotic_scheduling::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = AnalyticModel::new(2, 2, |counts, _ty| {
//!     let distinct = counts.iter().filter(|&&c| c > 0).count();
//!     0.5 * if distinct == 2 { 1.2 } else { 1.0 }
//! });
//! let report = Session::builder()
//!     .rates(&model)
//!     .policy_names(["worst", "fcfs-markov", "optimal"])
//!     .run()?;
//! assert!(report.throughput(Policy::Optimal) >= report.throughput(Policy::FcfsMarkov));
//! # Ok(())
//! # }
//! ```
//!
//! The pre-`Session` free functions (`optimal_schedule`, `fcfs_throughput`,
//! `run_latency_experiment`, ...) remain available through [`legacy`] and
//! the prelude, deprecated in favour of the session API.

pub use dist;
pub use lp;
pub use predict;
pub use queueing;
pub use serve;
pub use session;
pub use simproc;
pub use symbiosis;
pub use workloads;

pub mod legacy;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use session::{
        stats, Policy, PolicyKind, PolicyReport, Session, SessionBuilder, SessionError,
        SessionReport, SweepBuilder, SweepError, SweepItem, SweepReport, SweepRow, WorkerPool,
    };
    pub use symbiosis::{
        assert_rate_model_conformance, enumerate_coschedules, enumerate_workloads, AnalyticModel,
        BottleneckFit, CachedModel, Coschedule, FairnessExperiment, FcfsOutcome, FcfsParams,
        HeterogeneityTable, JobSize, Objective, RateModel, Schedule, SymbiosisError, WorkloadRates,
        WorkloadVariability,
    };

    pub use predict::{
        samples_from_table, stratified_plan, BottleneckFitter, ErrorSummary, Fitter,
        InterferenceFitter, PredictedModel, RateSample, SamplePlan,
    };

    pub use dist::{
        run_worker, ChaosPlan, ChaosTransport, Coordinator, DistConfig, DistError, DistOutcome,
        TcpTransport, Transport, WorkerConfig, WorkerSummary,
    };
    pub use queueing::{
        BatchConfig, BatchReport, ContentionModel, FcfsScheduler, LatencyConfig, LatencyReport,
        MaxItScheduler, MaxTpScheduler, MmcQueue, Scheduler, SizeDist, SrptScheduler,
    };
    pub use serve::{
        run_serve, BeamPlacer, BreakerConfig, Dispatcher, Placer, PolicyPlacer, Queue, ServeConfig,
        ServeReport, TwinError, TwinLoop,
    };
    pub use simproc::{BenchmarkProfile, FetchPolicy, Machine, MachineConfig, RobPartitioning};
    pub use workloads::{
        spec2006, spec_names, spec_profile, PerfTable, StoreOutcome, TableStore, WorkUnit,
        WorkloadView,
    };

    #[allow(deprecated)]
    pub use crate::legacy::{
        analyze_variability, fairness_experiment, fcfs_throughput, fcfs_throughput_markov,
        fit_linear_bottleneck, heterogeneity_table, optimal_schedule, parallel_map,
        run_batch_experiment, run_latency_experiment, throughput_bounds,
    };

    #[allow(deprecated)]
    pub use queueing::CoscheduleRates;
}
