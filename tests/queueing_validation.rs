//! Validation of the discrete-event latency simulator against queueing
//! theory, plus property tests of its conservation laws.

use proptest::prelude::*;

use symbiotic_scheduling::prelude::*;

#[test]
fn des_matches_erlang_c_across_loads() {
    // M/M/4 with unit service rate: the DES must match the closed form.
    let rates = ContentionModel::new(vec![1.0], 0.0, 4);
    for (load, seed) in [(0.5, 1u64), (0.7, 2), (0.875, 3)] {
        let lambda = 4.0 * load;
        let analytic = MmcQueue::new(lambda, 1.0, 4).expect("stable queue");
        let report = run_latency_experiment(
            &rates,
            &mut FcfsScheduler,
            &LatencyConfig {
                arrival_rate: lambda,
                measured_jobs: 80_000,
                warmup_jobs: 8_000,
                sizes: SizeDist::Exponential,
                seed,
            },
        )
        .expect("experiment runs");
        let rel_w =
            (report.mean_turnaround - analytic.mean_turnaround()).abs() / analytic.mean_turnaround();
        assert!(
            rel_w < 0.06,
            "load {load}: W sim {} vs analytic {}",
            report.mean_turnaround,
            analytic.mean_turnaround()
        );
        let rel_l = (report.mean_jobs_in_system - analytic.mean_jobs_in_system()).abs()
            / analytic.mean_jobs_in_system();
        assert!(
            rel_l < 0.08,
            "load {load}: L sim {} vs analytic {}",
            report.mean_jobs_in_system,
            analytic.mean_jobs_in_system()
        );
        // Utilisation = offered load; empty fraction = P0.
        assert!((report.utilization - lambda).abs() / lambda < 0.04);
        assert!((report.empty_fraction - analytic.empty_probability()).abs() < 0.02);
    }
}

#[test]
fn smarter_schedulers_do_not_hurt_turnaround_much_at_high_load() {
    // A symbiotic toy system where mixing types is faster.
    struct Symbiotic;
    impl CoscheduleRates for Symbiotic {
        fn num_types(&self) -> usize {
            2
        }
        fn contexts(&self) -> usize {
            4
        }
        fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
            assert!(counts[ty] > 0);
            let n: u32 = counts.iter().sum();
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            // Mixing gives +15% per extra distinct type.
            (1.0 / (1.0 + 0.3 * (n - 1) as f64)) * (1.0 + 0.15 * (distinct - 1.0))
        }
    }
    let rates = Symbiotic;
    let cfg = LatencyConfig {
        arrival_rate: 1.1,
        measured_jobs: 30_000,
        warmup_jobs: 3_000,
        sizes: SizeDist::Exponential,
        seed: 5,
    };
    let fcfs = run_latency_experiment(&rates, &mut FcfsScheduler, &cfg).expect("runs");
    let maxit = run_latency_experiment(&rates, &mut MaxItScheduler, &cfg).expect("runs");
    let srpt = run_latency_experiment(&rates, &mut SrptScheduler, &cfg).expect("runs");
    assert!(
        srpt.mean_turnaround < fcfs.mean_turnaround * 1.05,
        "SRPT {} vs FCFS {}",
        srpt.mean_turnaround,
        fcfs.mean_turnaround
    );
    assert!(
        maxit.mean_turnaround < fcfs.mean_turnaround * 1.5,
        "MAXIT {} vs FCFS {}",
        maxit.mean_turnaround,
        fcfs.mean_turnaround
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn des_conservation_laws(
        load in 0.3f64..0.9,
        alpha in 0.0f64..0.4,
        seed in 0u64..500,
        deterministic in any::<bool>(),
    ) {
        let rates = ContentionModel::new(vec![1.0, 0.6], alpha, 4);
        // Effective capacity shrinks with contention; stay safely stable.
        let report = run_latency_experiment(
            &rates,
            &mut FcfsScheduler,
            &LatencyConfig {
                arrival_rate: load * 2.0 / (1.0 + 3.0 * alpha),
                measured_jobs: 8_000,
                warmup_jobs: 800,
                sizes: if deterministic {
                    SizeDist::Deterministic
                } else {
                    SizeDist::Exponential
                },
                seed,
            },
        )
        .expect("experiment runs");
        // Physical bounds.
        prop_assert!(report.mean_turnaround > 0.0);
        prop_assert!(report.utilization >= 0.0 && report.utilization <= 4.0 + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&report.empty_fraction));
        prop_assert!(report.throughput > 0.0);
        prop_assert!(report.mean_jobs_in_system >= 0.0);
        // Little's law within Monte Carlo tolerance.
        let lw = report.throughput * report.mean_turnaround;
        let rel = (report.mean_jobs_in_system - lw).abs()
            / report.mean_jobs_in_system.max(0.1);
        prop_assert!(rel < 0.25, "L {} vs lambda*W {}", report.mean_jobs_in_system, lw);
    }

    #[test]
    fn erlang_c_monotone_in_load(servers in 1u32..8, lo in 0.05f64..0.45) {
        let hi = lo + 0.4;
        let qlo = MmcQueue::new(servers as f64 * lo, 1.0, servers).expect("stable");
        let qhi = MmcQueue::new(servers as f64 * hi, 1.0, servers).expect("stable");
        prop_assert!(qhi.erlang_c() >= qlo.erlang_c());
        prop_assert!(qhi.mean_turnaround() >= qlo.mean_turnaround());
        prop_assert!(qhi.empty_probability() <= qlo.empty_probability());
    }

    #[test]
    fn more_servers_reduce_waiting(lambda in 0.5f64..3.5) {
        let c1 = (lambda.floor() as u32 + 1).max(4);
        let q_small = MmcQueue::new(lambda, 1.0, c1).expect("stable");
        let q_big = MmcQueue::new(lambda, 1.0, c1 + 2).expect("stable");
        prop_assert!(q_big.mean_turnaround() <= q_small.mean_turnaround() + 1e-12);
    }
}
