//! Validation of the discrete-event latency simulator against queueing
//! theory, plus property-style tests of its conservation laws (seeded
//! in-repo case generation; every failure reproduces exactly).

mod common;

use common::CaseRng;
use symbiotic_scheduling::prelude::*;

#[test]
fn des_matches_erlang_c_across_loads() {
    // M/M/4 with unit service rate: the DES must match the closed form.
    let rates = ContentionModel::new(vec![1.0], 0.0, 4);
    for (load, seed) in [(0.5, 1u64), (0.7, 2), (0.875, 3)] {
        let lambda = 4.0 * load;
        let analytic = MmcQueue::new(lambda, 1.0, 4).expect("stable queue");
        let session = Session::builder()
            .rates(&rates)
            .policy(Policy::Fcfs)
            .latency(LatencyConfig {
                arrival_rate: lambda,
                measured_jobs: 80_000,
                warmup_jobs: 8_000,
                sizes: SizeDist::Exponential,
                seed,
            })
            .run()
            .expect("session runs");
        let report = session
            .row(Policy::Fcfs)
            .and_then(|r| r.latency.as_ref())
            .expect("latency semantics");
        let rel_w = (report.mean_turnaround - analytic.mean_turnaround()).abs()
            / analytic.mean_turnaround();
        assert!(
            rel_w < 0.06,
            "load {load}: W sim {} vs analytic {}",
            report.mean_turnaround,
            analytic.mean_turnaround()
        );
        let rel_l = (report.mean_jobs_in_system - analytic.mean_jobs_in_system()).abs()
            / analytic.mean_jobs_in_system();
        assert!(
            rel_l < 0.08,
            "load {load}: L sim {} vs analytic {}",
            report.mean_jobs_in_system,
            analytic.mean_jobs_in_system()
        );
        // Utilisation = offered load; empty fraction = P0.
        assert!((report.utilization - lambda).abs() / lambda < 0.04);
        assert!((report.empty_fraction - analytic.empty_probability()).abs() < 0.02);
    }
}

#[test]
fn smarter_schedulers_do_not_hurt_turnaround_much_at_high_load() {
    // A symbiotic toy system where mixing types is faster, expressed as an
    // analytic rate model.
    let rates = AnalyticModel::new(2, 4, |counts, _ty| {
        let n: u32 = counts.iter().sum();
        let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
        // Mixing gives +15% per extra distinct type.
        (1.0 / (1.0 + 0.3 * (n - 1) as f64)) * (1.0 + 0.15 * (distinct - 1.0))
    });
    let report = Session::builder()
        .rates(&rates)
        .policies([Policy::Fcfs, Policy::MaxIt, Policy::Srpt])
        .latency(LatencyConfig {
            arrival_rate: 1.1,
            measured_jobs: 30_000,
            warmup_jobs: 3_000,
            sizes: SizeDist::Exponential,
            seed: 5,
        })
        .run()
        .expect("session runs");
    let turnaround = |p: Policy| {
        report
            .row(p)
            .and_then(|r| r.latency.as_ref())
            .expect("latency semantics")
            .mean_turnaround
    };
    let fcfs = turnaround(Policy::Fcfs);
    let maxit = turnaround(Policy::MaxIt);
    let srpt = turnaround(Policy::Srpt);
    assert!(srpt < fcfs * 1.05, "SRPT {srpt} vs FCFS {fcfs}");
    assert!(maxit < fcfs * 1.5, "MAXIT {maxit} vs FCFS {fcfs}");
}

#[test]
fn des_conservation_laws() {
    let mut rng = CaseRng::new(0xDE5);
    for _ in 0..24 {
        let load = rng.range(0.3, 0.9);
        let alpha = rng.range(0.0, 0.4);
        let seed = rng.below(500);
        let deterministic = rng.bool();
        let rates = ContentionModel::new(vec![1.0, 0.6], alpha, 4);
        // Effective capacity shrinks with contention; stay safely stable.
        let report = run_latency_experiment_checked(
            &rates,
            &LatencyConfig {
                arrival_rate: load * 2.0 / (1.0 + 3.0 * alpha),
                measured_jobs: 8_000,
                warmup_jobs: 800,
                sizes: if deterministic {
                    SizeDist::Deterministic
                } else {
                    SizeDist::Exponential
                },
                seed,
            },
        );
        // Physical bounds.
        assert!(report.mean_turnaround > 0.0);
        assert!(report.utilization >= 0.0 && report.utilization <= 4.0 + 1e-9);
        assert!((0.0..=1.0 + 1e-9).contains(&report.empty_fraction));
        assert!(report.throughput > 0.0);
        assert!(report.mean_jobs_in_system >= 0.0);
        // Little's law within Monte Carlo tolerance.
        let lw = report.throughput * report.mean_turnaround;
        let rel = (report.mean_jobs_in_system - lw).abs() / report.mean_jobs_in_system.max(0.1);
        assert!(
            rel < 0.25,
            "L {} vs lambda*W {}",
            report.mean_jobs_in_system,
            lw
        );
    }
}

/// Runs the FCFS latency session and extracts the latency report.
fn run_latency_experiment_checked(
    rates: &ContentionModel,
    config: &LatencyConfig,
) -> LatencyReport {
    Session::builder()
        .rates(rates)
        .policy(Policy::Fcfs)
        .latency(config.clone())
        .run()
        .expect("session runs")
        .row(Policy::Fcfs)
        .and_then(|r| r.latency.clone())
        .expect("latency semantics")
}

#[test]
fn erlang_c_monotone_in_load() {
    let mut rng = CaseRng::new(0xE71A);
    for _ in 0..24 {
        let servers = 1 + rng.below(7) as u32;
        let lo = rng.range(0.05, 0.45);
        let hi = lo + 0.4;
        let qlo = MmcQueue::new(servers as f64 * lo, 1.0, servers).expect("stable");
        let qhi = MmcQueue::new(servers as f64 * hi, 1.0, servers).expect("stable");
        assert!(qhi.erlang_c() >= qlo.erlang_c());
        assert!(qhi.mean_turnaround() >= qlo.mean_turnaround());
        assert!(qhi.empty_probability() <= qlo.empty_probability());
    }
}

#[test]
fn more_servers_reduce_waiting() {
    let mut rng = CaseRng::new(0x5E4E);
    for _ in 0..24 {
        let lambda = rng.range(0.5, 3.5);
        let c1 = (lambda.floor() as u32 + 1).max(4);
        let q_small = MmcQueue::new(lambda, 1.0, c1).expect("stable");
        let q_big = MmcQueue::new(lambda, 1.0, c1 + 2).expect("stable");
        assert!(q_big.mean_turnaround() <= q_small.mean_turnaround() + 1e-12);
    }
}
