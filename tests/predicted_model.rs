//! End-to-end wiring of the `predict` subsystem through the public API:
//! a [`PredictedModel`] is a rate source like any other — single
//! [`Session`]s consume it directly, and [`Session::sweep`] consumes its
//! materialised predicted table — and the sampled-fit pipeline
//! (plan → sampled table → fit → analyse) runs through the facade alone.

use symbiotic_scheduling::prelude::*;
// The non-deprecated spelling (the prelude's is the legacy shim).
use symbiotic_scheduling::symbiosis::optimal_schedule;

/// Ground-truth contention law over a 6-benchmark suite on 4 contexts:
/// each benchmark's per-slot IPC degrades affinely in the co-runner
/// counts, with pair-specific sensitivities — so different mixes have
/// genuinely different optimal throughputs, and workload rankings carry
/// signal a fitted model must reproduce.
fn truth_ipc(combo: &[usize]) -> Vec<f64> {
    let mut counts = [0u32; 6];
    for &b in combo {
        counts[b] += 1;
    }
    combo
        .iter()
        .map(|&b| {
            let base = 0.8 + 0.15 * b as f64;
            let mut factor = 1.0;
            for (j, &c) in counts.iter().enumerate() {
                let beta = 0.02 + 0.015 * ((b * 5 + j * 3) % 7) as f64 / 7.0;
                factor -= beta * c as f64;
            }
            base * factor
        })
        .collect()
}

fn fitted_model(budget: usize) -> (PerfTable, PredictedModel) {
    let names: Vec<String> = (0..6).map(|b| format!("bench{b}")).collect();
    let full = PerfTable::synthetic(names.clone(), 4, truth_ipc).expect("full table");
    let plan = stratified_plan(6, 4, budget, 0xD16).expect("plan");
    let sampled =
        PerfTable::synthetic_sampled(names, 4, plan.indices(), truth_ipc).expect("sampled table");
    let model = PredictedModel::from_table(
        &sampled,
        &[0, 1, 2, 3, 4, 5],
        WorkUnit::Weighted,
        Box::new(InterferenceFitter),
    )
    .expect("fit");
    (full, model)
}

/// `Session::builder().rates(&model)` — a predicted model drives every
/// throughput policy exactly like a measured view.
#[test]
fn session_accepts_a_predicted_model_as_rate_source() {
    let (_, model) = fitted_model(60);
    let report = Session::builder()
        .rates(&model)
        .policies([Policy::Worst, Policy::FcfsMarkov, Policy::Optimal])
        .run()
        .expect("session over predicted rates");
    let worst = report.throughput(Policy::Worst).unwrap();
    let fcfs = report.throughput(Policy::FcfsMarkov).unwrap();
    let best = report.throughput(Policy::Optimal).unwrap();
    assert!(worst <= fcfs + 1e-9 && fcfs <= best + 1e-9);
    // Partial support means the latency policies run too.
    let latency = Session::builder()
        .rates(&model)
        .policy(Policy::Fcfs)
        .fcfs_jobs(2_000)
        .seed(11)
        .run()
        .expect("batch leg over predicted rates");
    assert!(latency.rows[0].batch.is_some());
}

/// `Session::sweep()` over the model's materialised predicted table: per
/// sub-workload, the sweep rows match sessions run directly on the
/// model's predicted `WorkloadRates`.
#[test]
fn sweep_accepts_a_predicted_table_as_rate_source() {
    let (_, model) = fitted_model(60);
    let names: Vec<String> = (0..6).map(|b| format!("bench{b}")).collect();
    let predicted = model.to_table(names).expect("predicted table");
    let workloads: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![1, 3, 5], vec![0, 2, 4]];
    let sweep = Session::sweep()
        .table(&predicted)
        .workloads(workloads.clone())
        .unit(WorkUnit::Plain)
        .policies([Policy::Worst, Policy::Optimal])
        .threads(2)
        .run()
        .expect("sweep over predicted table");
    assert_eq!(sweep.len(), 3);
    for (row, w) in sweep.rows.iter().zip(&workloads) {
        let rates = model.workload_rates(w).expect("predicted rates");
        let direct = Session::builder()
            .rates(&rates)
            .policies([Policy::Worst, Policy::Optimal])
            .run()
            .expect("direct session");
        for policy in [Policy::Worst, Policy::Optimal] {
            let via_sweep = row.report.throughput(policy).unwrap();
            let via_model = direct.throughput(policy).unwrap();
            assert!(
                (via_sweep - via_model).abs() <= 1e-9 * via_model.abs().max(1.0),
                "workload {w:?}, policy {policy}: {via_sweep} vs {via_model}"
            );
        }
    }
}

/// The pipeline's point: a ≤ 50% budget reproduces the measured OPTIMAL
/// landscape closely, and refitting with the full enumeration only
/// improves it.
#[test]
fn sampled_fit_tracks_the_measured_optimal_landscape() {
    let (full, model) = fitted_model(40);
    let workloads = enumerate_workloads(6, 3);
    let measured: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let rates = full.workload_rates(w).expect("measured rates");
            optimal_schedule(&rates, Objective::MaxThroughput)
                .expect("lp")
                .throughput
        })
        .collect();
    let predicted: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let rates = model.workload_rates(w).expect("predicted rates");
            optimal_schedule(&rates, Objective::MaxThroughput)
                .expect("lp")
                .throughput
        })
        .collect();
    let tau = stats::kendall_tau(&measured, &predicted).expect("tau");
    assert!(tau > 0.8, "rank agreement too weak: tau = {tau}");
    let err = model.error_against(&full.workload_rates(&[0, 1, 2, 3, 4, 5]).unwrap());
    assert!(err.mean_abs_rel < 0.05, "mean error {}", err.mean_abs_rel);
}
