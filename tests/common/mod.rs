#![allow(dead_code)]

//! Shared deterministic case generator for the property-style integration
//! tests (an in-repo stand-in for an external property-testing framework:
//! no network dependencies, fully reproducible failures).

/// Case sampler over the workspace's shared SplitMix64 generator.
pub struct CaseRng {
    inner: symbiotic_scheduling::symbiosis::rng::SplitMix64,
}

impl CaseRng {
    pub fn new(seed: u64) -> Self {
        CaseRng {
            inner: symbiotic_scheduling::symbiosis::rng::SplitMix64::new(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.inner.next_f64()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.next_range(bound)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `n` uniform draws in `[lo, hi)`.
    pub fn vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }
}
