//! End-to-end soak test of the online service through the facade: a
//! seeded arrival stream runs the whole queue → dispatcher → twin loop
//! against an analytic ground truth, twice per configuration, and the
//! runs must agree bit-for-bit while the digital twin's error trends
//! down and shutdown leaves nothing behind.

use symbiotic_scheduling::prelude::*;
use symbiotic_scheduling::serve::{ErrorPoint, ServeError};

/// Ground truth with real symbiosis: heterogeneous coschedules run
/// faster, load slows everyone down.
fn truth() -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
    AnalyticModel::new(4, 4, |counts: &[u32], ty| {
        let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
        let load: u32 = counts.iter().sum();
        (0.7 + 0.1 * ty as f64) * (1.0 + 0.22 * (distinct - 1.0))
            / (1.0 + 0.38 * (load as f64 - 1.0))
    })
}

/// The twin's starting point: solo and pair measurements only.
fn seed_model(truth: &dyn RateModel) -> PredictedModel {
    let n = truth.num_types();
    let samples: Vec<RateSample> = (1..=2)
        .flat_map(|s| enumerate_coschedules(n, s))
        .map(|c| RateSample {
            counts: c.counts().to_vec(),
            rates: (0..n).map(|ty| truth.total_rate(c.counts(), ty)).collect(),
        })
        .collect();
    PredictedModel::fit(n, truth.contexts(), samples, Box::new(InterferenceFitter)).unwrap()
}

fn soak_cfg(background: bool) -> ServeConfig {
    ServeConfig {
        arrival_rate: 2.5,
        jobs: 600,
        seed: 0xD1617,
        queue_capacity: 256,
        batch: 60,
        probes: 3,
        background_twin: background,
        breaker: None,
        twin_panic_at_batch: None,
    }
}

fn soak(background: bool) -> ServeReport {
    let truth = truth();
    run_serve(
        &truth,
        seed_model(&truth),
        Box::new(BeamPlacer::new(6)),
        &soak_cfg(background),
    )
    .unwrap()
}

/// Graceful shutdown: the queue drains, no job is lost or double-placed,
/// and the books balance exactly.
#[test]
fn soak_conserves_every_job_through_shutdown() {
    let report = soak(false);
    assert_eq!(report.submitted + report.rejected, 600);
    assert_eq!(report.completed, report.submitted);
    let placed: u64 = report.trace.iter().map(|p| p.placed.len() as u64).sum();
    assert_eq!(placed, report.completed, "every placement completes once");
    assert!(report.mean_slowdown >= 1.0 - 1e-9);
    assert!(report.jobs_per_time > 0.0);
}

/// Determinism: two runs from the same seed produce identical placement
/// traces, refit histories and error trajectories.
#[test]
fn soak_placement_traces_are_deterministic() {
    let a = soak(false);
    let b = soak(false);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.refits, b.refits);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.mean_slowdown, b.mean_slowdown);
    assert_eq!(a.final_train_samples, b.final_train_samples);
}

/// The background refit worker reproduces the inline run bit-for-bit.
#[test]
fn soak_background_twin_matches_inline() {
    let inline_run = soak(false);
    let background_run = soak(true);
    assert_eq!(inline_run.trace, background_run.trace);
    assert_eq!(inline_run.refits, background_run.refits);
    assert_eq!(inline_run.errors, background_run.errors);
}

/// The digital twin learns monotonically (within a small tolerance for
/// individual refits) and ends well below its starting error.
#[test]
fn soak_model_error_is_monotone_non_increasing_across_refits() {
    let report = soak(false);
    assert!(report.refits.len() >= 4, "soak must refit repeatedly");
    let errs: Vec<&ErrorPoint> = report.errors.iter().collect();
    assert!(errs.len() >= 2);
    // Individual refits may wobble a little once the error is small (a
    // batch of near-duplicate coschedule measurements can pull the
    // least-squares fit sideways), so allow 15% per step; the trend and
    // the endpoint checks below keep the twin honest.
    for pair in errs.windows(2) {
        assert!(
            pair[1].mean_abs_rel <= pair[0].mean_abs_rel * 1.15 + 1e-9,
            "refit error regressed: {} -> {} (generation {})",
            pair[0].mean_abs_rel,
            pair[1].mean_abs_rel,
            pair[1].generation
        );
    }
    let first = errs.first().unwrap().mean_abs_rel;
    let last = errs.last().unwrap().mean_abs_rel;
    assert!(last < first, "twin must learn: {first} -> {last}");
}

/// Shape mismatches between model and truth are rejected up front.
#[test]
fn soak_rejects_mismatched_model_shapes() {
    let truth = truth();
    let narrow = AnalyticModel::new(2, 4, |counts: &[u32], _| {
        1.0 / counts.iter().sum::<u32>() as f64
    });
    let err = run_serve(
        &truth,
        seed_model(&narrow),
        Box::new(PolicyPlacer::fcfs()),
        &soak_cfg(false),
    )
    .unwrap_err();
    assert!(matches!(err, ServeError::Config(_)));
}
