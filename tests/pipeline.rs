//! End-to-end integration: simulator -> performance table -> Session
//! scheduling analyses, on a reduced scale.

use symbiotic_scheduling::prelude::*;

fn small_table(config: MachineConfig) -> PerfTable {
    let machine = Machine::new(config.with_windows(2_000, 8_000)).expect("valid config");
    let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(4).collect();
    PerfTable::build(&machine, &suite, 4).expect("table builds")
}

#[test]
fn smt_pipeline_reproduces_headline_ordering() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let report = Session::builder()
        .rates(&rates)
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(20_000)
        .seed(7)
        .run()
        .expect("session runs");
    let worst = report.throughput(Policy::Worst).unwrap();
    let fcfs = report.throughput(Policy::FcfsEvent).unwrap();
    let best = report.throughput(Policy::Optimal).unwrap();
    // The paper's sandwich: worst <= FCFS <= best.
    assert!(worst <= fcfs + 1e-6);
    assert!(fcfs <= best + 1e-6);
    // And the headline: the FCFS->optimal gap is small relative to the
    // per-coschedule instantaneous throughput spread.
    let n_s = rates.coschedules().len();
    let its: Vec<f64> = (0..n_s)
        .map(|si| rates.instantaneous_throughput(si))
        .collect();
    let it_spread = (its.iter().cloned().fold(f64::MIN, f64::max)
        - its.iter().cloned().fold(f64::MAX, f64::min))
        / (its.iter().sum::<f64>() / n_s as f64);
    let gain = best / fcfs - 1.0;
    assert!(
        gain < it_spread,
        "optimal gain {gain} should be well below IT spread {it_spread}"
    );
}

#[test]
fn quadcore_pipeline_yields_valid_rate_tables() {
    let table = small_table(MachineConfig::quadcore());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    assert_eq!(rates.coschedules().len(), 35);
    for si in 0..35 {
        let s = &rates.coschedules()[si];
        for b in 0..4 {
            let r = rates.rate(si, b);
            if s.count(b) > 0 {
                assert!(r > 0.0, "present type must progress");
                // WIPC of c jobs of a type can never exceed c (jobs cannot
                // run faster than solo).
                assert!(
                    r <= s.count(b) as f64 + 0.15,
                    "rate {r} exceeds count {}",
                    s.count(b)
                );
            } else {
                assert_eq!(r, 0.0);
            }
        }
    }
}

#[test]
fn optimal_schedule_uses_few_coschedules_end_to_end() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let report = Session::builder()
        .rates(&rates)
        .policy(Policy::Optimal)
        .run()
        .expect("session runs");
    let row = report.row(Policy::Optimal).unwrap();
    let fractions = row.fractions.as_ref().expect("LP rows carry fractions");
    // Section IV property on real (simulated) data: at most N coschedules.
    assert!(fractions.iter().filter(|&&x| x > 1e-7).count() <= 4);
    // Work balance holds.
    let work_rate = |b: usize| -> f64 {
        fractions
            .iter()
            .enumerate()
            .map(|(si, &x)| x * rates.rate(si, b))
            .sum()
    };
    let w0 = work_rate(0);
    for b in 1..4 {
        assert!((work_rate(b) - w0).abs() < 1e-6);
    }
}

#[test]
fn markov_and_event_fcfs_agree_on_simulated_rates() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let report = Session::builder()
        .rates(&rates)
        .policies([Policy::FcfsMarkov, Policy::FcfsEvent])
        .fcfs_jobs(150_000)
        .job_size(JobSize::Exponential)
        .seed(3)
        .run()
        .expect("session runs");
    let markov = report.throughput(Policy::FcfsMarkov).unwrap();
    let sim = report.throughput(Policy::FcfsEvent).unwrap();
    let rel = (markov - sim).abs() / markov;
    assert!(rel < 0.02, "markov {markov} vs event sim {sim}");
}

#[test]
fn latency_experiment_runs_on_simulated_view() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let view = table.workload_view(&[0, 1, 2, 3]).expect("valid view");
    let fcfs_max = Session::builder()
        .rates(&rates)
        .policy(Policy::FcfsEvent)
        .fcfs_jobs(20_000)
        .seed(7)
        .run()
        .expect("session runs")
        .throughput(Policy::FcfsEvent)
        .unwrap();
    let report = Session::builder()
        .rates(&view)
        .policy(Policy::Fcfs)
        .latency(LatencyConfig {
            arrival_rate: 0.8 * fcfs_max,
            measured_jobs: 5_000,
            warmup_jobs: 500,
            sizes: SizeDist::Exponential,
            seed: 2,
        })
        .run()
        .expect("session runs");
    let latency = report
        .row(Policy::Fcfs)
        .and_then(|r| r.latency.as_ref())
        .expect("latency semantics");
    // Stable system: throughput tracks the offered load.
    let rel = (latency.throughput - 0.8 * fcfs_max).abs() / (0.8 * fcfs_max);
    assert!(rel < 0.08, "throughput {} vs load", latency.throughput);
    assert!(latency.utilization <= 4.0 + 1e-9);
    assert!(latency.empty_fraction < 0.5);
}

/// The deprecated free-function shims must keep producing exactly the
/// numbers the session path produces — old call sites lose nothing.
#[test]
#[allow(deprecated)]
fn legacy_shims_agree_with_sessions() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let report = Session::builder()
        .rates(&rates)
        .policies([
            Policy::Worst,
            Policy::FcfsEvent,
            Policy::Optimal,
            Policy::FcfsMarkov,
        ])
        .fcfs_jobs(10_000)
        .seed(11)
        .run()
        .expect("session runs");
    let (worst, best) = throughput_bounds(&rates).expect("lp solves");
    let fcfs = fcfs_throughput(&rates, 10_000, JobSize::Deterministic, 11).expect("fcfs runs");
    let markov = fcfs_throughput_markov(&rates).expect("chain solves");
    assert_eq!(Some(best.throughput), report.throughput(Policy::Optimal));
    assert_eq!(Some(worst.throughput), report.throughput(Policy::Worst));
    assert_eq!(Some(fcfs.throughput), report.throughput(Policy::FcfsEvent));
    assert_eq!(
        Some(markov.throughput),
        report.throughput(Policy::FcfsMarkov)
    );
    assert_eq!(
        Some(best.fractions),
        report.row(Policy::Optimal).unwrap().fractions.clone()
    );
}
