//! End-to-end integration: simulator -> performance table -> scheduling
//! analyses, on a reduced scale.

use symbiotic_scheduling::prelude::*;

fn small_table(config: MachineConfig) -> PerfTable {
    let machine = Machine::new(config.with_windows(2_000, 8_000)).expect("valid config");
    let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(4).collect();
    PerfTable::build(&machine, &suite, 4).expect("table builds")
}

#[test]
fn smt_pipeline_reproduces_headline_ordering() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let (worst, best) = throughput_bounds(&rates).expect("lp solves");
    let fcfs =
        fcfs_throughput(&rates, 20_000, JobSize::Deterministic, 7).expect("fcfs runs");
    // The paper's sandwich: worst <= FCFS <= best.
    assert!(worst.throughput <= fcfs.throughput + 1e-6);
    assert!(fcfs.throughput <= best.throughput + 1e-6);
    // And the headline: the FCFS->optimal gap is small relative to the
    // per-coschedule instantaneous throughput spread.
    let n_s = rates.coschedules().len();
    let its: Vec<f64> = (0..n_s)
        .map(|si| rates.instantaneous_throughput(si))
        .collect();
    let it_spread = (its.iter().cloned().fold(f64::MIN, f64::max)
        - its.iter().cloned().fold(f64::MAX, f64::min))
        / (its.iter().sum::<f64>() / n_s as f64);
    let gain = best.throughput / fcfs.throughput - 1.0;
    assert!(
        gain < it_spread,
        "optimal gain {gain} should be well below IT spread {it_spread}"
    );
}

#[test]
fn quadcore_pipeline_yields_valid_rate_tables() {
    let table = small_table(MachineConfig::quadcore());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    assert_eq!(rates.coschedules().len(), 35);
    for si in 0..35 {
        let s = &rates.coschedules()[si];
        for b in 0..4 {
            let r = rates.rate(si, b);
            if s.count(b) > 0 {
                assert!(r > 0.0, "present type must progress");
                // WIPC of c jobs of a type can never exceed c (jobs cannot
                // run faster than solo).
                assert!(
                    r <= s.count(b) as f64 + 0.15,
                    "rate {r} exceeds count {}",
                    s.count(b)
                );
            } else {
                assert_eq!(r, 0.0);
            }
        }
    }
}

#[test]
fn optimal_schedule_uses_few_coschedules_end_to_end() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let best = optimal_schedule(&rates, Objective::MaxThroughput).expect("lp solves");
    // Section IV property on real (simulated) data: at most N coschedules.
    assert!(best.selected(1e-7).len() <= 4);
    // Work balance holds.
    let w0 = best.work_rate(&rates, 0);
    for b in 1..4 {
        assert!((best.work_rate(&rates, b) - w0).abs() < 1e-6);
    }
}

#[test]
fn markov_and_event_fcfs_agree_on_simulated_rates() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let markov = fcfs_throughput_markov(&rates).expect("chain solves");
    let sim = fcfs_throughput(&rates, 150_000, JobSize::Exponential, 3).expect("sim runs");
    let rel = (markov.throughput - sim.throughput).abs() / markov.throughput;
    assert!(
        rel < 0.02,
        "markov {} vs event sim {}",
        markov.throughput,
        sim.throughput
    );
}

#[test]
fn latency_experiment_runs_on_simulated_view() {
    let table = small_table(MachineConfig::smt4());
    let rates = table.workload_rates(&[0, 1, 2, 3]).expect("valid workload");
    let view = table.workload_view(&[0, 1, 2, 3]).expect("valid view");
    let fcfs_max =
        fcfs_throughput(&rates, 20_000, JobSize::Deterministic, 7).expect("fcfs runs");
    let report = run_latency_experiment(
        &view,
        &mut FcfsScheduler,
        &LatencyConfig {
            arrival_rate: 0.8 * fcfs_max.throughput,
            measured_jobs: 5_000,
            warmup_jobs: 500,
            sizes: SizeDist::Exponential,
            seed: 2,
        },
    )
    .expect("experiment runs");
    // Stable system: throughput tracks the offered load.
    let rel = (report.throughput - 0.8 * fcfs_max.throughput).abs()
        / (0.8 * fcfs_max.throughput);
    assert!(rel < 0.08, "throughput {} vs load", report.throughput);
    assert!(report.utilization <= 4.0 + 1e-9);
    assert!(report.empty_fraction < 0.5);
}
