//! Property-based tests of the scheduling LP machinery on randomly
//! generated rate tables.

use proptest::prelude::*;

use symbiotic_scheduling::prelude::*;

/// Strategy: a random symbiosis-flavoured rate table for N types on K
/// contexts. Per-job rates are positive and bounded by 1 (WIPC), modulated
/// by heterogeneity so both symbiotic and anti-symbiotic tables appear.
fn rate_table(n: usize, k: usize) -> impl Strategy<Value = WorkloadRates> {
    let per_job = prop::collection::vec(0.05f64..1.0, n);
    let het_boost = -0.15f64..0.15;
    (per_job, het_boost).prop_map(move |(solo, boost)| {
        WorkloadRates::build(n, k, |s| {
            let het = s.heterogeneity() as f64;
            s.counts()
                .iter()
                .zip(&solo)
                .map(|(&c, &r)| {
                    if c == 0 {
                        0.0
                    } else {
                        // Scale keeps per-job rates in (0, 1].
                        let share = 1.0 / s.size() as f64;
                        let factor = (1.0 + boost * (het - 2.0)).clamp(0.2, 1.8);
                        (c as f64 * r * share.max(0.4) * factor).min(c as f64)
                    }
                })
                .collect()
        })
        .expect("generated table is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lp_bounds_sandwich_fcfs(rates in rate_table(3, 3), seed in 0u64..1000) {
        let (worst, best) = throughput_bounds(&rates).expect("lp solves");
        prop_assert!(best.throughput >= worst.throughput - 1e-7);
        let fcfs = fcfs_throughput(&rates, 25_000, JobSize::Deterministic, seed)
            .expect("fcfs runs");
        // The LP bounds hold exactly in the infinite-run limit; a finite
        // experiment's realised type mix fluctuates, so allow ~2% slack
        // (FCFS sits *at* the boundary when the worst and best schedules
        // nearly coincide).
        prop_assert!(fcfs.throughput <= best.throughput * 1.02 + 1e-6);
        prop_assert!(fcfs.throughput >= worst.throughput * 0.98 - 1e-6);
    }

    #[test]
    fn markov_fcfs_also_within_bounds(rates in rate_table(3, 3)) {
        let (worst, best) = throughput_bounds(&rates).expect("lp solves");
        let markov = fcfs_throughput_markov(&rates).expect("chain solves");
        prop_assert!(markov.throughput <= best.throughput + 1e-6);
        prop_assert!(markov.throughput >= worst.throughput - 1e-6);
    }

    #[test]
    fn optimal_fractions_form_distribution_and_balance_work(
        rates in rate_table(4, 4)
    ) {
        for objective in [Objective::MaxThroughput, Objective::MinThroughput] {
            let sched = optimal_schedule(&rates, objective).expect("lp solves");
            let total: f64 = sched.fractions.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "fractions sum {total}");
            prop_assert!(sched.fractions.iter().all(|&x| x >= -1e-9));
            let w0 = sched.work_rate(&rates, 0);
            for b in 1..rates.num_types() {
                prop_assert!((sched.work_rate(&rates, b) - w0).abs() < 1e-5);
            }
            // Basic-solution support bound (Section IV).
            prop_assert!(sched.selected(1e-7).len() <= rates.num_types());
        }
    }

    #[test]
    fn throughput_equals_fraction_weighted_instantaneous(
        rates in rate_table(3, 4)
    ) {
        let best = optimal_schedule(&rates, Objective::MaxThroughput).expect("solves");
        let recomputed: f64 = best
            .fractions
            .iter()
            .enumerate()
            .map(|(si, &x)| x * rates.instantaneous_throughput(si))
            .sum();
        prop_assert!((recomputed - best.throughput).abs() < 1e-7);
    }

    #[test]
    fn insensitive_tables_are_scheduler_independent(
        solo in prop::collection::vec(0.1f64..0.9, 3)
    ) {
        let solo_clone = solo.clone();
        let rates = WorkloadRates::build(3, 3, move |s| {
            s.counts()
                .iter()
                .zip(&solo_clone)
                .map(|(&c, &r)| c as f64 * r / 3.0)
                .collect()
        })
        .expect("valid");
        let (worst, best) = throughput_bounds(&rates).expect("solves");
        prop_assert!((best.throughput - worst.throughput).abs() < 1e-6);
        // Equation 7: AT = N / sum_b 1/R_b with R_b = K * r_b / K = r_b...
        // here per-job rate r_b/3 with K=3 jobs: R_b = 3 * r_b / 3 = r_b.
        let expected = 3.0 / solo.iter().map(|r| 1.0 / r).sum::<f64>();
        prop_assert!((best.throughput - expected).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_error_is_nonnegative_and_zero_for_exact(
        big_r in prop::collection::vec(0.2f64..2.0, 3)
    ) {
        let big_r_clone = big_r.clone();
        let rates = WorkloadRates::build(3, 3, move |s| {
            let total = s.size() as f64;
            s.counts()
                .iter()
                .zip(&big_r_clone)
                .map(|(&c, &r)| c as f64 / total * r)
                .collect()
        })
        .expect("valid");
        let fit = fit_linear_bottleneck(&rates).expect("fits");
        prop_assert!(fit.mse >= 0.0);
        prop_assert!(fit.mse < 1e-12, "exact bottleneck must fit, mse {}", fit.mse);
        for (got, want) in fit.full_rates.iter().zip(&big_r) {
            prop_assert!((got - want).abs() < 1e-5);
        }
    }
}
