//! Property-style tests of the scheduling LP machinery on deterministic
//! pseudo-random rate tables (seeded in-repo case generation; every
//! failure reproduces exactly).

mod common;

use common::CaseRng;
use symbiotic_scheduling::prelude::*;

/// A random symbiosis-flavoured rate table for N types on K contexts.
/// Per-job rates are positive and bounded by 1 (WIPC), modulated by
/// heterogeneity so both symbiotic and anti-symbiotic tables appear.
fn rate_table(rng: &mut CaseRng, n: usize, k: usize) -> WorkloadRates {
    let solo = rng.vec(n, 0.05, 1.0);
    let boost = rng.range(-0.15, 0.15);
    WorkloadRates::build(n, k, |s| {
        let het = s.heterogeneity() as f64;
        s.counts()
            .iter()
            .zip(&solo)
            .map(|(&c, &r)| {
                if c == 0 {
                    0.0
                } else {
                    // Scale keeps per-job rates in (0, 1].
                    let share = 1.0 / s.size() as f64;
                    let factor = (1.0 + boost * (het - 2.0)).clamp(0.2, 1.8);
                    (c as f64 * r * share.max(0.4) * factor).min(c as f64)
                }
            })
            .collect()
    })
    .expect("generated table is valid")
}

#[test]
fn lp_bounds_sandwich_fcfs() {
    let mut rng = CaseRng::new(0xA001);
    for _ in 0..48 {
        let rates = rate_table(&mut rng, 3, 3);
        let seed = rng.below(1000);
        let report = Session::builder()
            .rates(&rates)
            .policies([Policy::Worst, Policy::Optimal, Policy::FcfsEvent])
            .fcfs_jobs(25_000)
            .seed(seed)
            .run()
            .expect("session runs");
        let worst = report.throughput(Policy::Worst).unwrap();
        let best = report.throughput(Policy::Optimal).unwrap();
        let fcfs = report.throughput(Policy::FcfsEvent).unwrap();
        assert!(best >= worst - 1e-7);
        // The LP bounds hold exactly in the infinite-run limit; a finite
        // experiment's realised type mix fluctuates, so allow ~2% slack
        // (FCFS sits *at* the boundary when the worst and best schedules
        // nearly coincide).
        assert!(fcfs <= best * 1.02 + 1e-6, "fcfs {fcfs} above best {best}");
        assert!(
            fcfs >= worst * 0.98 - 1e-6,
            "fcfs {fcfs} below worst {worst}"
        );
    }
}

#[test]
fn markov_fcfs_also_within_bounds() {
    let mut rng = CaseRng::new(0xA002);
    for _ in 0..48 {
        let rates = rate_table(&mut rng, 3, 3);
        let report = Session::builder()
            .rates(&rates)
            .policies([Policy::Worst, Policy::Optimal, Policy::FcfsMarkov])
            .run()
            .expect("session runs");
        let worst = report.throughput(Policy::Worst).unwrap();
        let best = report.throughput(Policy::Optimal).unwrap();
        let markov = report.throughput(Policy::FcfsMarkov).unwrap();
        assert!(markov <= best + 1e-6);
        assert!(markov >= worst - 1e-6);
    }
}

#[test]
fn optimal_fractions_form_distribution_and_balance_work() {
    let mut rng = CaseRng::new(0xA003);
    for _ in 0..48 {
        let rates = rate_table(&mut rng, 4, 4);
        let report = Session::builder()
            .rates(&rates)
            .policies([Policy::Optimal, Policy::Worst])
            .run()
            .expect("session runs");
        for policy in [Policy::Optimal, Policy::Worst] {
            let row = report.row(policy).unwrap();
            let fractions = row.fractions.as_ref().expect("LP rows carry fractions");
            let total: f64 = fractions.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "fractions sum {total}");
            assert!(fractions.iter().all(|&x| x >= -1e-9));
            let work_rate = |b: usize| -> f64 {
                fractions
                    .iter()
                    .enumerate()
                    .map(|(si, &x)| x * rates.rate(si, b))
                    .sum()
            };
            let w0 = work_rate(0);
            for b in 1..rates.num_types() {
                assert!((work_rate(b) - w0).abs() < 1e-5, "work must balance");
            }
            // Basic-solution support bound (Section IV).
            let support = fractions.iter().filter(|&&x| x > 1e-7).count();
            assert!(support <= rates.num_types());
        }
    }
}

#[test]
fn throughput_equals_fraction_weighted_instantaneous() {
    let mut rng = CaseRng::new(0xA004);
    for _ in 0..48 {
        let rates = rate_table(&mut rng, 3, 4);
        let report = Session::builder()
            .rates(&rates)
            .policy(Policy::Optimal)
            .run()
            .expect("session runs");
        let row = report.row(Policy::Optimal).unwrap();
        let recomputed: f64 = row
            .fractions
            .as_ref()
            .expect("LP rows carry fractions")
            .iter()
            .enumerate()
            .map(|(si, &x)| x * rates.instantaneous_throughput(si))
            .sum();
        assert!((recomputed - row.throughput).abs() < 1e-7);
    }
}

#[test]
fn insensitive_tables_are_scheduler_independent() {
    let mut rng = CaseRng::new(0xA005);
    for _ in 0..48 {
        let solo = rng.vec(3, 0.1, 0.9);
        let solo_clone = solo.clone();
        let rates = WorkloadRates::build(3, 3, move |s| {
            s.counts()
                .iter()
                .zip(&solo_clone)
                .map(|(&c, &r)| c as f64 * r / 3.0)
                .collect()
        })
        .expect("valid");
        let report = Session::builder()
            .rates(&rates)
            .policies([Policy::Worst, Policy::Optimal])
            .run()
            .expect("session runs");
        let worst = report.throughput(Policy::Worst).unwrap();
        let best = report.throughput(Policy::Optimal).unwrap();
        assert!((best - worst).abs() < 1e-6);
        // Equation 7: AT = N / sum_b 1/R_b with R_b = K * r_b / K = r_b...
        // here per-job rate r_b/3 with K=3 jobs: R_b = 3 * r_b / 3 = r_b.
        let expected = 3.0 / solo.iter().map(|r| 1.0 / r).sum::<f64>();
        assert!((best - expected).abs() < 1e-6);
    }
}

#[test]
fn bottleneck_error_is_nonnegative_and_zero_for_exact() {
    let mut rng = CaseRng::new(0xA006);
    for _ in 0..48 {
        let big_r = rng.vec(3, 0.2, 2.0);
        let big_r_clone = big_r.clone();
        let rates = WorkloadRates::build(3, 3, move |s| {
            let total = s.size() as f64;
            s.counts()
                .iter()
                .zip(&big_r_clone)
                .map(|(&c, &r)| c as f64 / total * r)
                .collect()
        })
        .expect("valid");
        let fit = symbiosis::fit_linear_bottleneck(&rates).expect("fits");
        assert!(fit.mse >= 0.0);
        assert!(
            fit.mse < 1e-12,
            "exact bottleneck must fit, mse {}",
            fit.mse
        );
        for (got, want) in fit.full_rates.iter().zip(&big_r) {
            assert!((got - want).abs() < 1e-5);
        }
    }
}
