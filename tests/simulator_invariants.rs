//! Property-style tests of the processor simulator's physical invariants
//! (seeded in-repo case generation; every failure reproduces exactly).

mod common;

use common::CaseRng;
use symbiotic_scheduling::prelude::*;

/// A random but valid benchmark profile.
fn profile(rng: &mut CaseRng, seed_base: u64) -> BenchmarkProfile {
    let mut p = BenchmarkProfile::balanced("prop", seed_base + rng.below(1_000));
    p.load_frac = rng.range(0.05, 0.4);
    p.store_frac = rng.range(0.02, 0.15);
    p.branch_frac = rng.range(0.02, 0.2);
    p.long_op_frac = rng.range(0.0, 0.2);
    p.mispredict_rate = rng.range(0.0, 0.1);
    p.dep_frac = rng.range(0.1, 0.6);
    p.stack_frac = rng.range(0.3, 0.9);
    p.hot_frac = rng.range(0.3, 0.95);
    p.streaming_frac = rng.range(0.0, 0.5);
    p.stack_lines = 48;
    p.hot_lines = 256;
    p.footprint_lines = 256 + (7 + rng.below(20_000 - 7)) * 50;
    p.validate().expect("generated profile valid");
    p
}

#[test]
fn solo_ipc_bounded_by_machine_width() {
    let machine =
        Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000)).expect("valid config");
    let mut rng = CaseRng::new(0x9000);
    for _ in 0..16 {
        let p = profile(&mut rng, 0x9000);
        let res = machine.simulate_solo(&p).expect("simulates");
        assert!(res.ipc[0] > 0.0, "forward progress");
        assert!(res.ipc[0] <= 4.0, "cannot beat dispatch width");
    }
}

#[test]
fn corunning_never_speeds_a_job_up() {
    let machine =
        Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000)).expect("valid config");
    let mut rng = CaseRng::new(0xAB00);
    for _ in 0..16 {
        let a = profile(&mut rng, 0xA000);
        let b = profile(&mut rng, 0xB000);
        let solo = machine.simulate_solo(&a).expect("simulates").ipc[0];
        let co = machine.simulate(&[&a, &b, &b, &b]).expect("simulates");
        assert!(
            co.ipc[0] <= solo * 1.02 + 1e-9,
            "slot 0: co {} vs solo {}",
            co.ipc[0],
            solo
        );
        // Aggregate cannot exceed the shared dispatch width either.
        assert!(co.total_ipc() <= 4.0 + 1e-9);
    }
}

#[test]
fn simulation_deterministic_across_runs() {
    let machine =
        Machine::new(MachineConfig::quadcore().with_windows(500, 2_000)).expect("valid config");
    let mut rng = CaseRng::new(0xC000);
    for _ in 0..16 {
        let p = profile(&mut rng, 0xC000);
        let r1 = machine.simulate(&[&p, &p]).expect("simulates");
        let r2 = machine.simulate(&[&p, &p]).expect("simulates");
        assert_eq!(r1, r2);
    }
}

#[test]
fn static_partitioning_never_exceeds_dynamic_rob_reach() {
    // With clones on all 4 contexts, static partitioning constrains each
    // thread to ROB/4; a single solo thread under static partitioning
    // still gets its full share and must make progress.
    let cfg = MachineConfig::smt4()
        .with_rob_partitioning(RobPartitioning::Static)
        .with_windows(1_000, 4_000);
    let machine = Machine::new(cfg).expect("valid config");
    let mut rng = CaseRng::new(0xD000);
    for _ in 0..16 {
        let p = profile(&mut rng, 0xD000);
        let res = machine.simulate(&[&p, &p, &p, &p]).expect("simulates");
        for &ipc in &res.ipc {
            assert!(ipc > 0.0);
        }
    }
}

#[test]
fn cache_pressure_monotone_in_corunner_footprint() {
    // A fixed victim job; co-runners with growing footprints must not make
    // the victim faster (usually strictly slower through L3 contention).
    let machine =
        Machine::new(MachineConfig::quadcore().with_windows(5_000, 20_000)).expect("valid config");
    let mut victim = BenchmarkProfile::balanced("victim", 1);
    victim.footprint_lines = 60_000; // L3-resident working set
    victim.hot_lines = 4_000;
    victim.hot_frac = 0.6;

    let mut previous = f64::INFINITY;
    let mut decreased = 0;
    for (i, fp) in [256u64, 20_000, 200_000].into_iter().enumerate() {
        let mut aggressor = BenchmarkProfile::balanced("aggressor", 2);
        aggressor.footprint_lines = fp;
        aggressor.hot_lines = fp.clamp(48, 2_000);
        aggressor.hot_frac = 0.3;
        aggressor.streaming_frac = 0.4;
        let res = machine
            .simulate(&[&victim, &aggressor, &aggressor, &aggressor])
            .expect("simulates");
        if res.ipc[0] <= previous + 0.01 {
            decreased += 1;
        }
        previous = res.ipc[0];
        let _ = i;
    }
    assert!(
        decreased >= 2,
        "victim IPC should fall (or stay) as aggressor footprints grow"
    );
}

#[test]
fn fetch_policy_changes_are_observable_under_asymmetry() {
    // ICOUNT vs round-robin must produce different dispatch interleavings
    // for asymmetric coschedules (the Section VII axis is not a no-op).
    let mut fast = BenchmarkProfile::balanced("fast", 3);
    fast.load_frac = 0.1;
    fast.dep_frac = 0.15;
    fast.footprint_lines = 512;
    fast.hot_lines = 256;
    let mut slow = BenchmarkProfile::balanced("slow", 4);
    slow.load_frac = 0.35;
    slow.dep_frac = 0.5;
    slow.footprint_lines = 400_000;
    slow.hot_frac = 0.4;

    let mk = |policy| {
        Machine::new(
            MachineConfig::smt4()
                .with_fetch_policy(policy)
                .with_windows(5_000, 20_000),
        )
        .expect("valid config")
    };
    let icount = mk(FetchPolicy::Icount)
        .simulate(&[&fast, &slow, &slow, &slow])
        .expect("simulates");
    let rr = mk(FetchPolicy::RoundRobin)
        .simulate(&[&fast, &slow, &slow, &slow])
        .expect("simulates");
    assert_ne!(icount.ipc, rr.ipc, "policies must differ");
}
