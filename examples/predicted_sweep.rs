//! Predict instead of measure: fit an interference model on a *sampled*
//! performance table, then sweep workloads on predicted rates and compare
//! against the fully measured sweep.
//!
//! ```text
//! cargo run --release --example predicted_sweep
//! ```
//!
//! The flow is the `predict` crate's sampled-table pipeline end to end:
//!
//! 1. a stratified seeded [`SamplePlan`] picks a ~30% measurement budget;
//! 2. [`PerfTable::synthetic_sampled`] "measures" only that budget (a real
//!    study would call `PerfTable::build_sampled` with a simulator);
//! 3. each [`Fitter`] turns the samples into a [`PredictedModel`];
//! 4. `Session::sweep()` runs the same workloads on the measured table and
//!    on the model's predicted table, and the error summary says how much
//!    scheduling signal the ≪100% budget preserved.

use symbiotic_scheduling::prelude::*;

/// Ground truth: per-slot IPC with per-benchmark base speeds and
/// pair-specific affine contention — a machine whose workload rankings
/// carry real signal.
fn truth_ipc(combo: &[usize]) -> Vec<f64> {
    let mut counts = [0u32; 8];
    for &b in combo {
        counts[b] += 1;
    }
    combo
        .iter()
        .map(|&b| {
            let base = 0.7 + 0.12 * b as f64;
            let mut factor = 1.0;
            for (j, &c) in counts.iter().enumerate() {
                factor -= (0.015 + 0.012 * ((b * 3 + j * 5) % 6) as f64 / 6.0) * c as f64;
            }
            base * factor
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SUITE: usize = 8;
    const CONTEXTS: usize = 4;
    const BUDGET: usize = 100;

    let names: Vec<String> = (0..SUITE).map(|b| format!("bench{b}")).collect();
    let types: Vec<usize> = (0..SUITE).collect();

    // The fully measured reference (what sampling avoids re-running).
    let measured = PerfTable::synthetic(names.clone(), CONTEXTS, truth_ipc)?;

    // Measure only the stratified budget.
    let plan = stratified_plan(SUITE, CONTEXTS, BUDGET, 0x5EED)?;
    println!(
        "sampling {} of {} combos ({:.0}%):",
        plan.len(),
        plan.total(),
        100.0 * plan.fraction()
    );
    for s in plan.strata() {
        println!(
            "  size {}: {:>3} of {:>3} combos",
            s.size, s.chosen, s.available
        );
    }
    let sampled = PerfTable::synthetic_sampled(names.clone(), CONTEXTS, plan.indices(), truth_ipc)?;

    // Sweep every N = 3 workload on measured rates...
    let workloads = enumerate_workloads(SUITE, 3);
    let measured_sweep = Session::sweep()
        .table(&measured)
        .workloads(workloads.clone())
        .policies([Policy::Optimal, Policy::FcfsMarkov])
        .run()?;
    let measured_optimal = measured_sweep.throughputs(Policy::Optimal);

    // ... then on each fitter's predictions.
    println!(
        "\npredicted-vs-measured over {} workloads:",
        workloads.len()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "fitter", "table MAE", "table max", "opt MAE", "rank tau"
    );
    let fitters: [Box<dyn Fitter>; 2] = [Box::new(BottleneckFitter), Box::new(InterferenceFitter)];
    for fitter in fitters {
        let model = PredictedModel::from_table(&sampled, &types, WorkUnit::Weighted, fitter)?;
        let table_err = model.error_against(&measured.workload_rates(&types)?);

        let predicted_table = model.to_table(names.clone())?;
        let predicted_sweep = Session::sweep()
            .table(&predicted_table)
            .workloads(workloads.clone())
            .unit(WorkUnit::Plain)
            .policies([Policy::Optimal, Policy::FcfsMarkov])
            .run()?;
        let predicted_optimal = predicted_sweep.throughputs(Policy::Optimal);

        let opt_mae = measured_optimal
            .iter()
            .zip(&predicted_optimal)
            .map(|(m, p)| (p / m - 1.0).abs())
            .sum::<f64>()
            / measured_optimal.len() as f64;
        let tau = stats::kendall_tau(&measured_optimal, &predicted_optimal).unwrap();
        println!(
            "{:<18} {:>9.2}% {:>9.2}% {:>9.2}% {:>+10.2}",
            model.fitter_name(),
            100.0 * table_err.mean_abs_rel,
            100.0 * table_err.max_abs_rel,
            100.0 * opt_mae,
            tau
        );
    }

    println!(
        "\n(the affine generator is exactly representable by the interference\n\
         fitter, so its errors collapse to numerical noise; the bottleneck\n\
         fit shows what the rigid one-resource model gives up)"
    );
    Ok(())
}
