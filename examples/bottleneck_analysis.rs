//! Diagnosing *why* a workload is scheduler-insensitive with the linear-
//! bottleneck fit (the paper's Section V-C analysis).
//!
//! Run with: `cargo run --release --example bottleneck_analysis`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::new(MachineConfig::smt4().with_windows(20_000, 80_000))?;
    let suite = spec2006();
    let table = PerfTable::build(&machine, &suite, 8)?;

    // Two contrasting workloads: compute-heavy (front-end bottleneck-ish)
    // vs mixed compute/memory.
    let cases: [(&str, [usize; 4]); 2] = [
        (
            "compute-heavy (calculix h264ref hmmer tonto)",
            [1, 4, 5, 10],
        ),
        ("mixed (hmmer libquantum mcf xalancbmk)", [5, 6, 7, 11]),
    ];

    for (label, mix) in cases {
        let rates = table.workload_rates(&mix)?;
        let fit = symbiosis::fit_linear_bottleneck(&rates)?;
        let report = Session::builder()
            .rates(&rates)
            .policies([Policy::Worst, Policy::Optimal])
            .run()?;
        let worst = report.row(Policy::Worst).expect("requested");
        let best = report.row(Policy::Optimal).expect("requested");
        println!("== {label} ==");
        println!("  linear-bottleneck LSQ error: {:.5}", fit.mse);
        if let Some(pred) = fit.predicted_throughput {
            println!("  bottleneck-model throughput: {pred:.3}");
        }
        println!(
            "  LP bounds: worst {:.3} .. best {:.3}  (variability {:+.1}%)",
            worst.throughput,
            best.throughput,
            100.0 * (best.throughput / worst.throughput - 1.0)
        );
        println!(
            "  fitted full-resource rates R_b: {:?}\n",
            fit.full_rates
                .iter()
                .map(|r| (r * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "reading: a small LSQ error means every job's rate is proportional to\n\
         its share of one saturated resource, so *no* scheduler can move the\n\
         average throughput (Equation 7 in the paper pins it); large errors\n\
         leave room — unless per-type speed differences shrink the feasible\n\
         schedule space instead."
    );
    Ok(())
}
