//! Comparing the paper's four scheduling policies (FCFS, MAXIT, SRPT,
//! MAXTP) on one SMT workload across load levels — a miniature of the
//! paper's Figure 5.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measure the workload's coschedule rates on the SMT machine.
    let machine = Machine::new(MachineConfig::smt4().with_windows(20_000, 80_000))?;
    let suite = spec2006();
    let mix = [0usize, 4, 7, 9]; // bzip2, h264ref, mcf, sjeng
    println!("workload: bzip2 + h264ref + mcf + sjeng on a 4-way SMT\n");
    let table = PerfTable::build(&machine, &suite, 8)?;
    let rates = table.workload_rates(&mix)?;
    let view = table.workload_view(&mix)?;

    // FCFS maximum throughput defines the load scale; the LP solution
    // parameterises MAXTP.
    let fcfs_max = fcfs_throughput(&rates, 40_000, JobSize::Deterministic, 1)?.throughput;
    let best = optimal_schedule(&rates, Objective::MaxThroughput)?;
    let targets: Vec<(Vec<u32>, f64)> = rates
        .coschedules()
        .iter()
        .zip(&best.fractions)
        .filter(|(_, &x)| x > 1e-9)
        .map(|(s, &x)| (s.counts().to_vec(), x))
        .collect();
    println!(
        "FCFS max throughput {fcfs_max:.3} WIPC; LP optimal {:.3} ({:+.1}%)\n",
        best.throughput,
        100.0 * (best.throughput / fcfs_max - 1.0)
    );

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10}",
        "load", "policy", "turnaround", "utilisation", "empty"
    );
    for load in [0.8, 0.9, 0.95] {
        let cfg = LatencyConfig {
            arrival_rate: load * fcfs_max,
            measured_jobs: 30_000,
            warmup_jobs: 3_000,
            sizes: SizeDist::Exponential,
            seed: 99,
        };
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FcfsScheduler),
            Box::new(MaxItScheduler),
            Box::new(SrptScheduler),
            Box::new(MaxTpScheduler::new(targets.clone())),
        ];
        for sched in &mut schedulers {
            let name = sched.name();
            let report = run_latency_experiment(&view, sched.as_mut(), &cfg)?;
            println!(
                "{:>6.2} {:>8} {:>12.1} {:>12.2} {:>9.1}%",
                load,
                name,
                report.mean_turnaround,
                report.utilization,
                100.0 * report.empty_fraction
            );
        }
        println!();
    }
    println!(
        "expected shape (paper Fig. 5): SRPT wins turnaround at moderate load;\n\
         near saturation MAXTP pulls ahead and shows the lowest utilisation /\n\
         highest empty fraction (it finishes the same work sooner)."
    );
    Ok(())
}
