//! Comparing the paper's four scheduling policies (FCFS, MAXIT, SRPT,
//! MAXTP) on one SMT workload across load levels — a miniature of the
//! paper's Figure 5, driven end-to-end by the `Session` API.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measure the workload's coschedule rates on the SMT machine.
    let machine = Machine::new(MachineConfig::smt4().with_windows(20_000, 80_000))?;
    let suite = spec2006();
    let mix = [0usize, 4, 7, 9]; // bzip2, h264ref, mcf, sjeng
    println!("workload: bzip2 + h264ref + mcf + sjeng on a 4-way SMT\n");
    let table = PerfTable::build(&machine, &suite, 8)?;
    let rates = table.workload_rates(&mix)?;
    let view = table.workload_view(&mix)?;

    // FCFS maximum throughput defines the load scale; the LP optimum shows
    // the headroom (and parameterises MAXTP inside later sessions).
    let bounds = Session::builder()
        .rates(&rates)
        .policies([Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(40_000)
        .seed(1)
        .run()?;
    let fcfs_max = bounds.throughput(Policy::FcfsEvent).expect("requested");
    let best = bounds.throughput(Policy::Optimal).expect("requested");
    println!(
        "FCFS max throughput {fcfs_max:.3} WIPC; LP optimal {best:.3} ({:+.1}%)\n",
        100.0 * (best / fcfs_max - 1.0)
    );

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10}",
        "load", "policy", "turnaround", "utilisation", "empty"
    );
    for load in [0.8, 0.9, 0.95] {
        let report = Session::builder()
            .rates(&view)
            .policies(Policy::LATENCY)
            .latency(LatencyConfig {
                arrival_rate: load * fcfs_max,
                measured_jobs: 30_000,
                warmup_jobs: 3_000,
                sizes: SizeDist::Exponential,
                seed: 99,
            })
            .run()?;
        for row in &report.rows {
            let latency = row.latency.as_ref().expect("latency semantics");
            println!(
                "{:>6.2} {:>8} {:>12.1} {:>12.2} {:>9.1}%",
                load,
                row.policy.name(),
                latency.mean_turnaround,
                latency.utilization,
                100.0 * latency.empty_fraction
            );
        }
        println!();
    }
    println!(
        "expected shape (paper Fig. 5): SRPT wins turnaround at moderate load;\n\
         near saturation MAXTP pulls ahead and shows the lowest utilisation /\n\
         highest empty fraction (it finishes the same work sooner)."
    );
    Ok(())
}
