//! Quickstart: how much can a perfect symbiosis-aware scheduler gain over
//! FCFS on a fully loaded 4-way SMT processor?
//!
//! Run with: `cargo run --release --example quickstart`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated 4-way SMT machine (shorter windows than the paper's
    //    sweep so the example finishes in seconds).
    let machine = Machine::new(MachineConfig::smt4().with_windows(20_000, 80_000))?;

    // 2. Measure every coschedule of a 4-program mix: a compute-bound job
    //    (hmmer), a branchy one (sjeng), a streaming one (libquantum) and a
    //    pointer chaser (mcf).
    let suite = spec2006();
    let names = spec_names();
    let mut mix: Vec<usize> = ["hmmer", "sjeng", "libquantum", "mcf"]
        .iter()
        .map(|n| names.iter().position(|m| m == n).expect("known name"))
        .collect();
    mix.sort_unstable();

    println!("simulating all coschedules of:");
    for &b in &mix {
        println!("  {:12} (solo profile)", suite[b].name);
    }
    let table = PerfTable::build(&machine, &suite, 8)?;
    let rates = table.workload_rates(&mix)?;

    // 3. One session, three policies: the paper's Section IV machinery
    //    (LP bounds) plus the FCFS baseline.
    let report = Session::builder()
        .rates(&rates)
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(40_000)
        .seed(42)
        .run()?;

    let worst = report.throughput(Policy::Worst).expect("requested");
    let fcfs = report.throughput(Policy::FcfsEvent).expect("requested");
    let best = report.throughput(Policy::Optimal).expect("requested");
    println!("\naverage throughput (weighted instructions / cycle):");
    println!("  worst scheduler   {worst:.3}");
    println!("  FCFS              {fcfs:.3}");
    println!("  optimal scheduler {best:.3}");
    println!(
        "\noptimal gain over FCFS: {:+.1}%   (the paper's headline: ~3%)",
        100.0 * (best / fcfs - 1.0)
    );

    // 4. Which coschedules does the optimal schedule actually use? (At most
    //    N of them — a property of basic LP solutions.)
    let fractions = report
        .row(Policy::Optimal)
        .and_then(|r| r.fractions.as_deref())
        .expect("LP rows carry fractions");
    println!("\noptimal schedule time fractions:");
    for (si, s) in rates.coschedules().iter().enumerate() {
        if fractions[si] > 1e-6 {
            println!(
                "  {:>6.1}%  {}  (it = {:.3})",
                100.0 * fractions[si],
                s,
                rates.instantaneous_throughput(si)
            );
        }
    }
    Ok(())
}
