//! Quickstart: how much can a perfect symbiosis-aware scheduler gain over
//! FCFS on a fully loaded 4-way SMT processor?
//!
//! Run with: `cargo run --release --example quickstart`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated 4-way SMT machine (shorter windows than the paper's
    //    sweep so the example finishes in seconds).
    let machine = Machine::new(MachineConfig::smt4().with_windows(20_000, 80_000))?;

    // 2. Measure every coschedule of a 4-program mix: a compute-bound job
    //    (hmmer), a branchy one (sjeng), a streaming one (libquantum) and a
    //    pointer chaser (mcf).
    let suite = spec2006();
    let names = spec_names();
    let mix: Vec<usize> = ["hmmer", "sjeng", "libquantum", "mcf"]
        .iter()
        .map(|n| names.iter().position(|m| m == n).expect("known name"))
        .collect();
    let mut mix = mix;
    mix.sort_unstable();

    println!("simulating all coschedules of:");
    for &b in &mix {
        println!("  {:12} (solo profile)", suite[b].name);
    }
    let table = PerfTable::build(&machine, &suite, 8)?;
    let rates = table.workload_rates(&mix)?;

    // 3. The paper's Section IV machinery: LP bounds + FCFS baseline.
    let (worst, best) = throughput_bounds(&rates)?;
    let fcfs = fcfs_throughput(&rates, 40_000, JobSize::Deterministic, 42)?;

    println!("\naverage throughput (weighted instructions / cycle):");
    println!("  worst scheduler   {:.3}", worst.throughput);
    println!("  FCFS              {:.3}", fcfs.throughput);
    println!("  optimal scheduler {:.3}", best.throughput);
    println!(
        "\noptimal gain over FCFS: {:+.1}%   (the paper's headline: ~3%)",
        100.0 * (best.throughput / fcfs.throughput - 1.0)
    );

    // 4. Which coschedules does the optimal schedule actually use? (At most
    //    N of them — a property of basic LP solutions.)
    println!("\noptimal schedule time fractions:");
    for si in best.selected(1e-6) {
        let s = &rates.coschedules()[si];
        println!(
            "  {:>6.1}%  {}  (it = {:.3})",
            100.0 * best.fractions[si],
            s,
            rates.instantaneous_throughput(si)
        );
    }
    Ok(())
}
