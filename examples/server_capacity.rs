//! Capacity planning: why a small maximum-throughput gain matters near
//! saturation (the paper's Section VI argument).
//!
//! A service team sizing an SMT box wants to know: if a smarter scheduler
//! buys only 3% more maximum throughput, is it worth deploying? This
//! example answers with both the analytic M/M/4 model and the discrete-
//! event simulator: at high load, 3% more capacity cuts turnaround ~16%.
//!
//! Run with: `cargo run --release --example server_capacity`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("analytic M/M/4, service rate 1.0 vs 1.03 per context\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "load", "lambda", "W (mu=1.00)", "W (mu=1.03)", "reduction"
    );
    for load in [0.5, 0.7, 0.8, 0.875, 0.9, 0.95] {
        let lambda = 4.0 * load;
        let base = MmcQueue::new(lambda, 1.0, 4).map_err(|e| e.to_string())?;
        let fast = MmcQueue::new(lambda, 1.03, 4).map_err(|e| e.to_string())?;
        println!(
            "{:>8.3} {:>10.2} {:>12.3} {:>12.3} {:>11.1}%",
            load,
            lambda,
            base.mean_turnaround(),
            fast.mean_turnaround(),
            100.0 * (1.0 - fast.mean_turnaround() / base.mean_turnaround())
        );
    }

    // Cross-check one point with the discrete-event simulator: four
    // identical contexts, no symbiosis effects, exponential sizes.
    println!("\ncross-check at load 0.875 (lambda = 3.5) with the DES:");
    for (label, mu) in [("mu = 1.00", 1.0), ("mu = 1.03", 1.03)] {
        let scaled = ContentionModel::new(vec![mu], 0.0, 4);
        let session = Session::builder()
            .rates(&scaled)
            .policy(Policy::Fcfs)
            .latency(LatencyConfig {
                arrival_rate: 3.5,
                measured_jobs: 120_000,
                warmup_jobs: 12_000,
                sizes: SizeDist::Exponential,
                seed: 7,
            })
            .run()?;
        let report = session
            .row(Policy::Fcfs)
            .and_then(|r| r.latency.as_ref())
            .expect("latency semantics");
        println!(
            "  {label}: W = {:.2}, jobs in system = {:.1}, utilisation = {:.2}, empty = {:.1}%",
            report.mean_turnaround,
            report.mean_jobs_in_system,
            report.utilization,
            100.0 * report.empty_fraction
        );
    }
    println!(
        "\npaper's worked example: L 8.7 -> 7.3 jobs, W 2.5 -> 2.1 (16% less)\n\
         takeaway: report utilisation/empty time when comparing schedulers —\n\
         turnaround gains are a property of the operating point, not the\n\
         scheduler alone."
    );
    Ok(())
}
