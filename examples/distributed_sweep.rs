//! The sharded sweep coordinator end-to-end: split the full 495-mix
//! sweep across three worker threads speaking the wire protocol over
//! loopback TCP, merge their rows back in workload order, and check the
//! merged report is bitwise-identical to a single-process
//! `Session::sweep()` of the same table.
//!
//! The workers here live in this process for convenience; the exact same
//! `run_worker` loop backs `paperbench --worker ADDR` on other machines.
//!
//! Run with `cargo run --release --example distributed_sweep`.

use symbiotic_scheduling::prelude::*;

const WORKERS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared performance table (cached on disk across runs; short
    // simulator windows keep the example snappy).
    let store = TableStore::new(std::env::temp_dir().join("symbiosis-example-cache"));
    let config = MachineConfig::smt4().with_windows(10_000, 40_000);
    let outcome = store.get_or_build(&config, &spec2006(), 8)?;
    println!(
        "table ready: {} coschedules ({})",
        outcome.table.len(),
        if outcome.cache_hit {
            "cache hit"
        } else {
            "simulated"
        }
    );

    let sweep = || {
        Session::sweep()
            .table(&outcome.table)
            .workloads(enumerate_workloads(12, 4)) // all 495 four-type mixes
            .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
            .fcfs_jobs(10_000)
            .seed(42)
    };

    // Reference: the whole sweep in this process.
    let t0 = std::time::Instant::now();
    let reference = sweep().run()?;
    println!(
        "single process: {} workloads x 3 policies in {:.2?}",
        reference.len(),
        t0.elapsed()
    );

    // Distributed: the coordinator hands out chunks over real TCP to
    // three workers, each running the ordinary sweep machinery.
    let coordinator = Coordinator::from_sweep(sweep(), DistConfig::default())?;
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let t1 = std::time::Instant::now();
    let fleet: Vec<_> = (0..WORKERS)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(
                    TcpTransport::connect(addr.as_str())?,
                    &WorkerConfig::default(),
                )
            })
        })
        .collect();
    let outcome = coordinator.serve_listener(&listener, WORKERS)?;
    for handle in fleet {
        handle.join().expect("worker thread")?;
    }
    println!(
        "distributed   : {} chunk(s) over {} workers in {:.2?}",
        outcome.chunks,
        outcome.workers.len(),
        t1.elapsed()
    );
    for (i, w) in outcome.workers.iter().enumerate() {
        println!(
            "  worker {} ({}): {} chunk(s), {} row(s), {:.1} rows/s",
            i + 1,
            w.peer,
            w.chunks,
            w.rows,
            w.rows_per_sec()
        );
    }

    // The merge is deterministic: same rows, same order, same bits.
    assert_eq!(
        outcome.report, reference,
        "merged report must be bitwise-identical"
    );
    println!("\nparity: merged report is bitwise-identical to the single-process sweep");
    let gains = outcome.report.gains(Policy::Optimal, Policy::FcfsEvent);
    println!(
        "optimal over FCFS across the merged rows: mean {}, best {}",
        stats::pct(stats::mean(&gains)),
        stats::pct(stats::max(&gains)),
    );
    Ok(())
}
