//! Batch evaluation through the sweep API: one shared performance table,
//! many workload mixes, evaluated over a worker pool — plus the persistent
//! table store that makes repeated runs skip the simulation sweep.
//!
//! Run with `cargo run --release --example workload_sweep`.

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cache the performance table on disk: the first run simulates every
    // coschedule (the expensive part), later runs load the saved table.
    let cache_dir = std::env::temp_dir().join("symbiosis-example-cache");
    let store = TableStore::new(&cache_dir);
    // Short simulator windows keep the example snappy; drop `with_windows`
    // for paper-scale measurements.
    let config = MachineConfig::smt4().with_windows(10_000, 40_000);
    let suite = spec2006();

    let t0 = std::time::Instant::now();
    let outcome = store.get_or_build(&config, &suite, 8)?;
    println!(
        "table {} in {:.2?} ({} coschedules, cache at {})",
        if outcome.cache_hit {
            "loaded from cache"
        } else {
            "built"
        },
        t0.elapsed(),
        outcome.table.len(),
        cache_dir.display()
    );

    // Sweep every 4-type workload over the table: the LP bounds and the
    // FCFS baseline for each mix, fanned out over 8 worker threads.
    let workloads = enumerate_workloads(12, 4);
    let t1 = std::time::Instant::now();
    let sweep = Session::sweep()
        .table(&outcome.table)
        .workloads(workloads)
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(10_000)
        .seed(42)
        .threads(8)
        .run()?;
    println!(
        "swept {} workloads x 3 policies in {:.2?}\n",
        sweep.len(),
        t1.elapsed()
    );

    // Built-in aggregation replaces the hand-rolled mean/max folds.
    println!("{sweep}");
    let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
    println!(
        "optimal over FCFS: mean {}, best workload {}",
        stats::pct(stats::mean(&gains)),
        stats::pct(stats::max(&gains)),
    );
    println!(
        "FCFS sits at {:.1}% of the optimal-worst span on average",
        100.0
            * stats::mean(
                &sweep
                    .rows
                    .iter()
                    .map(|row| {
                        let best = row.report.throughput(Policy::Optimal).unwrap();
                        let worst = row.report.throughput(Policy::Worst).unwrap();
                        let fcfs = row.report.throughput(Policy::FcfsEvent).unwrap();
                        if best > worst {
                            (fcfs - worst) / (best - worst)
                        } else {
                            1.0
                        }
                    })
                    .collect::<Vec<_>>(),
            )
    );
    println!("\n(the paper: FCFS already sits close to optimal — scheduling");
    println!(" headroom over hundreds of mixes averages only a few percent)");
    Ok(())
}
