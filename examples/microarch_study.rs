//! Using optimal throughput as a microarchitecture-study metric
//! (the paper's Section VII): does an SMT front-end improvement still look
//! worthwhile once you account for what a smart scheduler could do anyway?
//!
//! Run with: `cargo run --release --example microarch_study`

use symbiotic_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = spec2006();
    // A few representative 4-type workloads.
    let mixes: [[usize; 4]; 4] = [
        [0, 4, 7, 9],  // bzip2 h264ref mcf sjeng
        [1, 5, 6, 11], // calculix hmmer libquantum xalancbmk
        [2, 3, 8, 10], // gcc_cp_decl gcc_g23 perlbench tonto
        [0, 5, 7, 11], // bzip2 hmmer mcf xalancbmk
    ];

    let policies = [
        (
            "RR / static ROB",
            FetchPolicy::RoundRobin,
            RobPartitioning::Static,
        ),
        (
            "ICOUNT / dynamic ROB",
            FetchPolicy::Icount,
            RobPartitioning::Dynamic,
        ),
    ];

    let mut summaries = Vec::new();
    for (label, fetch, rob) in policies {
        let machine = Machine::new(
            MachineConfig::smt4()
                .with_fetch_policy(fetch)
                .with_rob_partitioning(rob)
                .with_windows(20_000, 80_000),
        )?;
        let table = PerfTable::build(&machine, &suite, 8)?;
        let mut fcfs_sum = 0.0;
        let mut opt_sum = 0.0;
        for mix in &mixes {
            let rates = table.workload_rates(mix)?;
            let report = Session::builder()
                .rates(&rates)
                .policies([Policy::FcfsEvent, Policy::Optimal])
                .fcfs_jobs(30_000)
                .seed(5)
                .run()?;
            fcfs_sum += report.throughput(Policy::FcfsEvent).expect("requested");
            opt_sum += report.throughput(Policy::Optimal).expect("requested");
        }
        let n = mixes.len() as f64;
        summaries.push((label, fcfs_sum / n, opt_sum / n));
    }

    println!("SMT policy comparison over {} workloads:\n", mixes.len());
    println!(
        "{:<22} {:>12} {:>14}",
        "policy", "FCFS avg TP", "optimal avg TP"
    );
    for (label, fcfs, opt) in &summaries {
        println!("{label:<22} {fcfs:>12.3} {opt:>14.3}");
    }
    let (_, base_fcfs, base_opt) = summaries[0];
    let (_, new_fcfs, new_opt) = summaries[1];
    println!(
        "\nmicroarchitectural gain:  {:+.1}% under FCFS, {:+.1}% under optimal scheduling",
        100.0 * (new_fcfs / base_fcfs - 1.0),
        100.0 * (new_opt / base_opt - 1.0)
    );
    println!(
        "scheduling headroom on the baseline design: {:+.1}%",
        100.0 * (base_opt / base_fcfs - 1.0)
    );
    println!(
        "\nthe paper's Section VII point: the LP metric lets you compare\n\
         microarchitectures *as if* both shipped with a perfect scheduler,\n\
         without implementing one — and scheduling headroom can rival small\n\
         microarchitectural improvements."
    );
    Ok(())
}
